"""Adaptive injection scheduling: lane compaction, refill, cone gating.

:meth:`~repro.faultinjection.injector.FaultInjector.run_batch` pins a whole
batch to one injection cycle and keeps every lane slot occupied until the
*last* lane retires, so most of a campaign's simulated lane-cycles are spent
on lanes that have already failed or re-converged — and the campaign tail
runs nearly-empty batches.  :class:`AdaptiveScheduler` replaces the
per-cycle batches with one long-lived forward simulation per *pass*:

* **mixed-cycle batching** — lanes are activated at their own injection
  cycles: when the simulation reaches a pending injection's cycle, a free
  lane is loaded with the golden flip-flop state (per-lane, via the
  lane-vector algebra's scatter path), the target flip-flop is flipped, and
  the lane's loopback history is seeded from the golden record.  Requests
  that find no free lane roll over to the next pass;
* **lane compaction + refill** — retirement checks free lanes for the
  pending queue; once the queue can no longer refill a drained pass, the
  surviving lanes are *repacked* into a narrower batch
  (:meth:`~repro.sim.backend.SimBackend.gather_lanes` /
  :meth:`~repro.sim.backend.SimBackend.scatter_lanes`), which shrinks every
  subsequent big-int/array operation;
* **cone-gated evaluation** — the netlist is levelized into topologically
  ordered partitions at build time (:mod:`repro.netlist.levelize`), each
  compiled into its own callable.  A divergence frontier (which relevant
  flip-flops and loopback taps currently deviate from golden, on any active
  lane) is tracked at every retirement check, conservatively expanded by
  the structural one-tick adjacency between checks, and turned into the set
  of partitions that must actually be evaluated.  Flip-flops, criterion
  nets and loopback taps whose fan-in cone carries no diverging lane
  provably hold golden values, so their partitions are skipped and the
  golden bits written directly.  When the frontier is wide the scheduler
  falls back to the ordinary full evaluation, so gating can help but never
  hurt.

All of this is scheduling only: each lane still simulates the exact cycle
sequence :meth:`run_batch` would have, so per-injection verdicts and error
latencies are **bit-identical** to the naive batches — enforced per fuzz
seed by the ``scheduled-vs-naive`` differential mode in
:mod:`repro.verify.diff` and by the property tests in
``tests/test_scheduler.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..netlist.levelize import LevelizedDesign, ff_spread_masks, levelize
from ..sim.logic import lane_mask
from .faults import InjectionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .injector import FaultInjector

__all__ = [
    "InjectionRequest",
    "ScheduledOutcome",
    "SchedulerStats",
    "AdaptiveScheduler",
    "CONE_GATING_MODES",
    "EXECUTION_SCHEDULERS",
]

#: The campaign-level execution strategies: ``"adaptive"`` (this module) or
#: ``"batch"`` (one forward run per time slot).  Single source of truth for
#: :class:`~repro.faultinjection.campaign.StatisticalFaultCampaign` and
#: :class:`~repro.campaigns.spec.CampaignSpec` validation.
EXECUTION_SCHEDULERS = ("adaptive", "batch")

#: Valid ``cone_gating`` modes: ``auto`` gates only when few lanes are
#: active (wide batches almost always have a wide frontier), ``on`` always
#: attempts gating, ``off`` always runs the full evaluation.
CONE_GATING_MODES = ("auto", "on", "off")

#: ``auto`` mode attempts cone gating only at or below this many active
#: lanes; above it the union of per-lane divergence cones almost always
#: covers the whole netlist and the tracking would be pure overhead.
AUTO_GATE_MAX_LANES = 48

#: Fall back to full evaluation when the needed partitions exceed this
#: fraction of all partitions (gating would save less than the dispatch
#: and golden-write bookkeeping costs).
FALLBACK_NEED_FRACTION = 0.625

#: Give up frontier expansion (and gate nothing) once the expanded frontier
#: covers more than this fraction of the tracked flip-flops.
FALLBACK_FRONTIER_FRACTION = 0.5

#: Repack the batch when no refill is possible and fewer than half the
#: lanes survive, provided at least this many lanes would be freed (the
#: gather/scatter pass is O(flip-flops × survivors)).
MIN_REPACK_GAIN = 16

#: Default lane-slot capacity per backend when ``max_lanes`` is ``None``.
#: Wider batches amortize the per-statement interpreter cost over more
#: lanes — but only pay off when the batch stays *full*, which is exactly
#: what refill provides (a naive batch this wide would drain to a few
#: stragglers and waste almost the whole width).  Pass width is always
#: additionally capped by the pending-request count.
AUTO_MAX_LANES = {"compiled": 4096, "fused": 4096, "numpy": 16384}


@dataclass(frozen=True)
class InjectionRequest:
    """One pending injection: strike ``ff_index`` at ``cycle`` under the
    injector's fault model; ``key`` indexes the caller's request list and
    names the verdict slot."""

    cycle: int
    ff_index: int
    key: int


@dataclass
class SchedulerStats:
    """What one :meth:`AdaptiveScheduler.run` actually simulated.

    ``refills`` counts activations that reuse a lane freed earlier in the
    same pass (the lanes early retirement gave back), ``early_retired``
    the lanes retired at a divergence probe before the end of the trace
    without having failed (i.e. re-converged to golden), and
    ``peak_width`` the widest lane batch any pass allocated.  The fused
    backend's generated kernel reports the core counters only (passes,
    cycles, lane-cycles, activations, deferrals).
    """

    n_injections: int = 0
    n_passes: int = 0
    cycles_simulated: int = 0
    lane_cycles: int = 0
    activations: int = 0
    deferred: int = 0
    repacks: int = 0
    refills: int = 0
    early_retired: int = 0
    peak_width: int = 0
    gated_cycles: int = 0
    partitions_evaluated: int = 0
    partitions_skipped: int = 0
    policy_skipped: int = 0
    forced_cycles: int = 0

    def lane_occupancy(self) -> float:
        """Fraction of allocated lane-slots that carried a live injection.

        ``lane_cycles / (cycles_simulated * peak_width)`` — the quantity
        refill and repack exist to maximize (a naive drained batch decays
        toward 1/width).  0.0 when nothing was simulated or the width is
        unknown (fused kernel).
        """
        if not self.cycles_simulated or not self.peak_width:
            return 0.0
        return self.lane_cycles / (self.cycles_simulated * self.peak_width)

    def record_to(self, registry) -> None:
        """Report this run's totals into a metrics registry
        (:class:`repro.obs.metrics.MetricsRegistry` or compatible)."""
        for name in (
            "n_injections",
            "n_passes",
            "cycles_simulated",
            "lane_cycles",
            "activations",
            "deferred",
            "repacks",
            "refills",
            "early_retired",
            "gated_cycles",
            "partitions_evaluated",
            "partitions_skipped",
            "policy_skipped",
            "forced_cycles",
        ):
            value = getattr(self, name)
            if value:
                registry.counter(f"scheduler.{name}").inc(value)
        if self.cycles_simulated and self.peak_width:
            registry.gauge("scheduler.lane_occupancy").set(self.lane_occupancy())
        if self.cycles_simulated:
            registry.gauge("scheduler.cone_gate_hit_rate").set(
                self.gated_cycles / self.cycles_simulated
            )


@dataclass
class ScheduledOutcome:
    """Per-request verdicts of one scheduled run.

    ``verdicts[key]`` is ``(failed, latency)`` for the request with that
    key; *latency* is ``None`` unless the lane failed.  Bit-identical to
    running each request through :meth:`FaultInjector.run_batch`.

    ``skipped`` lists the keys of requests an ``admit`` gate rejected —
    those were never simulated and their verdict slots are meaningless.
    """

    verdicts: List[Tuple[bool, Optional[int]]]
    stats: SchedulerStats = field(default_factory=SchedulerStats)
    skipped: List[int] = field(default_factory=list)

    def failed_count(self) -> int:
        return sum(1 for failed, _lat in self.verdicts if failed)


class _GatingPlan:
    """Build-time artifacts of cone-gated evaluation for one injector.

    Everything here is derived once per (netlist, backend, criterion,
    testbench) binding: the levelized partitions compiled into callables,
    the per-consumer source masks/closures, the gated tick, and the
    frontier spread masks.
    """

    def __init__(self, injector: "FaultInjector") -> None:
        sim = injector.sim
        netlist = injector.netlist
        design: LevelizedDesign = levelize(netlist)
        self.design = design
        self.n_partitions = design.n_partitions
        self.partition_fns = sim.compile_partition_evals(
            [p.cells for p in design.partitions]
        )
        self.gated_tick = sim.compile_gated_tick()
        self.spread = ff_spread_masks(netlist, design)
        self.n_ffs = len(sim.flip_flops)
        self.full_parts_mask = (1 << self.n_partitions) - 1

        # Per flip-flop: transitive source masks and partition closure of the
        # D/RN cone — dirty cone => latch normally (and evaluate the cone),
        # clean cone => overwrite Q with the golden bit.
        self.ff_cone_ffm: List[int] = []
        self.ff_cone_im: List[int] = []
        self.ff_closure: List[int] = []
        for ff in sim.flip_flops:
            fm = im = closure = 0
            for pin in ("D", "RN"):
                net = ff.connections.get(pin)
                if net is not None and pin != "CK":
                    nfm, nim = design.source_masks(net)
                    fm |= nfm
                    im |= nim
                    closure |= design.closure_of_net(net)
            self.ff_cone_ffm.append(fm)
            self.ff_cone_im.append(im)
            self.ff_closure.append(closure)

        # Criterion pairs with their driving cones.
        net_names = list(netlist.nets)
        self.valid_pairs = [
            (idx, bit, *self._net_meta(design, net_names[idx]))
            for idx, bit in injector.criterion_valid_pairs
        ]
        self.data_pairs = [
            (idx, bit, *self._net_meta(design, net_names[idx]))
            for idx, bit in injector.criterion_data_pairs
        ]

        # Loopback taps: source cone masks/closures and target input bits.
        input_index = {name: i for i, name in enumerate(netlist.inputs)}
        self.taps = []
        for tap in injector.taps:
            src_net = net_names[tap.source_value_idx]
            tgt_net = net_names[tap.target_value_idx]
            fm, im = design.source_masks(src_net)
            self.taps.append(
                (fm, im, design.closure_of_net(src_net), 1 << input_index[tgt_net])
            )
        # Per tap: flip-flops whose D/RN cone reads the tap's target input —
        # the edge divergence takes when it crosses a loopback (FF → source
        # output → delayed slot → target input → FF).  The frontier
        # expansion must follow these edges too, or divergence that crosses
        # a tap mid-window would be golden-overwritten by the gated tick.
        self.tap_sink_ffs: List[int] = []
        for _fm, _im, _closure, tgt_bit in self.taps:
            sinks = 0
            for i in range(self.n_ffs):
                if self.ff_cone_im[i] & tgt_bit:
                    sinks |= 1 << i
            self.tap_sink_ffs.append(sinks)

    @staticmethod
    def _net_meta(design: LevelizedDesign, net: str) -> Tuple[int, int, int]:
        fm, im = design.source_masks(net)
        return fm, im, design.closure_of_net(net)

    # ------------------------------------------------------------ expansion

    def expand_frontier(
        self, frontier: int, tap_dirty: List[bool], steps: int, cap: int
    ) -> Optional[Tuple[int, List[bool], int]]:
        """Close the frontier under *steps* ticks of structural adjacency.

        The adjacency covers both the combinational FF→FF edges
        (:func:`~repro.netlist.levelize.ff_spread_masks`) and the loopback
        edges: a tap becomes dirty when its source cone touches the
        frontier (or another dirty tap's target input), and a dirty tap
        seeds the flip-flops reading its target input.  *tap_dirty* is the
        exact in-flight slot divergence at the anchoring probe; it is not
        mutated.  Returns ``(ff_mask, tap_dirty, dirty_input_bits)``, or
        ``None`` once the expansion exceeds *cap* set bits — the caller
        treats that as "frontier too wide, evaluate everything".
        """
        spread = self.spread
        current = frontier
        taps = list(tap_dirty)
        dirty_inputs = 0
        for t, (_fm, _im, _closure, tgt_bit) in enumerate(self.taps):
            if taps[t]:
                dirty_inputs |= tgt_bit
                current |= self.tap_sink_ffs[t]
        for _ in range(steps):
            added = 0
            bits = current
            while bits:
                low = bits & -bits
                added |= spread[low.bit_length() - 1]
                bits ^= low
            taps_changed = False
            for t, (fm, im, _closure, tgt_bit) in enumerate(self.taps):
                if not taps[t] and ((fm & current) or (im & dirty_inputs)):
                    taps[t] = True
                    dirty_inputs |= tgt_bit
                    added |= self.tap_sink_ffs[t]
                    taps_changed = True
            if added & ~current == 0 and not taps_changed:
                break
            current |= added
            if current.bit_count() > cap:
                return None
        return current, taps, dirty_inputs


class _Window:
    """Gating decisions valid for one check window (or "evaluate all")."""

    __slots__ = (
        "full",
        "eval_fns",
        "n_evaluated",
        "gw_mask",
        "live_valid",
        "clean_valid",
        "live_data",
        "tap_golden",
    )

    def __init__(self, full: bool) -> None:
        self.full = full
        self.eval_fns: List = []
        self.n_evaluated = 0
        self.gw_mask = 0
        self.live_valid: List[Tuple[int, int]] = []
        self.clean_valid: List[Tuple[int, int]] = []
        self.live_data: List[Tuple[int, int]] = []
        #: Per tap: ``True`` when the tap's source cone is clean and the
        #: slot write can broadcast the golden bit instead of reading the net.
        self.tap_golden: List[bool] = []


_FULL_WINDOW = _Window(full=True)


class AdaptiveScheduler:
    """Long-lived injection scheduler bound to one :class:`FaultInjector`.

    Parameters
    ----------
    injector:
        The bound forward simulator.  All backends are supported; the
        ``fused`` backend delegates to the generated scheduled-sweep kernel
        (:meth:`repro.sim.fused.FusedSweepKernel.run_scheduled`), which
        implements refill/retirement but not cone gating.
    max_lanes:
        Lane-slot capacity of one pass; ``None`` (default) picks the
        backend's tuned width from :data:`AUTO_MAX_LANES`.
    cone_gating:
        ``"auto"`` (default), ``"on"`` or ``"off"`` — see
        :data:`CONE_GATING_MODES`.  Ignored by the fused backend.
    repack:
        Allow shrinking a drained pass via gather/scatter lane compaction.
    """

    def __init__(
        self,
        injector: "FaultInjector",
        max_lanes: Optional[int] = None,
        cone_gating: str = "auto",
        repack: bool = True,
    ) -> None:
        if max_lanes is None:
            max_lanes = AUTO_MAX_LANES.get(injector.backend, 4096)
        if max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        if cone_gating not in CONE_GATING_MODES:
            raise ValueError(
                f"unknown cone_gating mode {cone_gating!r}; "
                f"choose from {CONE_GATING_MODES}"
            )
        self.injector = injector
        self.max_lanes = max_lanes
        self.cone_gating = cone_gating
        self.repack = repack
        self.stats = SchedulerStats()
        self._plan: Optional[_GatingPlan] = None
        self._load_fn = None

    # ------------------------------------------------------------------ API

    def run(
        self,
        injections: Sequence[Tuple[int, int]],
        horizon: Optional[int] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        admit: Optional[Callable[[InjectionRequest], bool]] = None,
        on_verdict: Optional[Callable[[InjectionRequest, bool], None]] = None,
    ) -> ScheduledOutcome:
        """Simulate every ``(cycle, ff_index)`` injection; return verdicts.

        Verdict *k* corresponds to ``injections[k]``.  Lanes are packed and
        refilled across injection cycles; results are bit-identical to one
        :meth:`FaultInjector.run_batch` lane per injection.  *progress* is
        called as ``progress(completed_injections, total)`` after every
        scheduler pass.

        *admit* and *on_verdict* are the refill queue's online policy
        hooks (see :class:`repro.campaigns.policy.ShardGate`): before a
        pending request is activated into a freed lane, ``admit(request)``
        may reject it — the request is recorded in
        :attr:`ScheduledOutcome.skipped` and never simulated — and
        ``on_verdict(request, failed)`` fires as each lane retires, so the
        gate sees results in execution order.  The simulated requests'
        verdicts stay bit-identical to an ungated run.  The fused
        backend's generated kernel does not support the hooks (they are
        ignored there; campaign-level policies still stop between rounds).
        """
        golden = self.injector.golden
        n_cycles = golden.n_cycles
        requests: List[InjectionRequest] = []
        for key, (cycle, ff_index) in enumerate(injections):
            if not 0 <= cycle < n_cycles:
                raise ValueError(
                    f"injection cycle {cycle} outside trace [0, {n_cycles})"
                )
            requests.append(InjectionRequest(cycle=cycle, ff_index=ff_index, key=key))
        requests.sort(key=lambda r: (r.cycle, r.key))

        self.stats = SchedulerStats(n_injections=len(requests))
        verdicts: List[Tuple[bool, Optional[int]]] = [(False, None)] * len(requests)
        if not requests:
            return ScheduledOutcome(verdicts=verdicts, stats=self.stats)

        total = len(requests)
        skipped: List[int] = []
        bound = self.injector.bound_model
        if self.injector.backend == "fused" and (
            bound is None or not bound.has_forces
        ):
            # Pure flip models (SEU, MBU clusters) ride the generated
            # scheduled-sweep kernel; forcing models need the cycle
            # substrate's per-cycle re-force hook and take the pass loop
            # below (the injector's cycle sim is compiled under "fused").
            self.stats.peak_width = min(self.max_lanes, total)
            self._run_fused(requests, verdicts, horizon, progress)
        else:
            pending = requests
            while pending:
                pending = self._run_pass(
                    pending, verdicts, horizon, admit, on_verdict, skipped
                )
                self.stats.n_passes += 1
                if progress is not None:
                    progress(total - len(pending), total)
        from ..obs import get_telemetry

        registry = get_telemetry().registry
        self.stats.record_to(registry)
        registry.counter(f"sim.{self.injector.backend}.lane_cycles").inc(
            self.stats.lane_cycles
        )
        if self.injector.fault_model is not None:
            registry.counter(
                f"fault.{self.injector.fault_model.name}.injections"
            ).inc(total - len(skipped))
        return ScheduledOutcome(verdicts=verdicts, stats=self.stats, skipped=skipped)

    # ---------------------------------------------------------- fused path

    def _run_fused(
        self,
        requests: List[InjectionRequest],
        verdicts: List[Tuple[bool, Optional[int]]],
        horizon: Optional[int],
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        kernel = self.injector.fused_kernel()
        bound = self.injector.bound_model
        kernel.run_scheduled(
            [
                (
                    r.cycle,
                    r.ff_index
                    if bound is None
                    else bound.plan(r.ff_index, r.cycle).flips,
                    r.key,
                )
                for r in requests
            ],
            verdicts,
            max_lanes=self.max_lanes,
            horizon=horizon,
            stats=self.stats,
            progress=progress,
        )

    # ---------------------------------------------------------- cycle path

    def _gating_plan(self) -> _GatingPlan:
        # Cached on the injector: plans are a function of the (netlist,
        # backend, criterion, testbench) binding, so repeated schedulers on
        # one injector (campaign top-ups, API users) must not re-levelize
        # and re-exec ~50 partition callables per run.
        if self._plan is None:
            plan = getattr(self.injector, "_cached_gating_plan", None)
            if plan is None:
                plan = _GatingPlan(self.injector)
                self.injector._cached_gating_plan = plan
            self._plan = plan
        return self._plan

    def _activation_loader(self):
        """Generated per-lane golden-state loader (one line per flip-flop).

        ``_load(v, z, am, nam, gs)`` sets, on the lanes selected by the
        native vectors ``am``/``nam = am ^ mask``, every flip-flop Q to its
        golden bit from the packed state ``gs`` — the scatter half of
        mixed-cycle activation, without a per-flip-flop Python loop.
        """
        if self._load_fn is None:
            load_fn = getattr(self.injector, "_cached_activation_loader", None)
            if load_fn is None:
                sim = self.injector.sim
                lines = ["def _load(v, z, am, nam, gs):"]
                for i, q in enumerate(sim._ff_q):
                    lines.append(
                        f"    v[{q}] = (v[{q}] & nam) | (am if (gs >> {i}) & 1 else z)"
                    )
                if not sim._ff_q:
                    lines.append("    pass")
                namespace: Dict[str, object] = {}
                exec("\n".join(lines), namespace)  # noqa: S102
                load_fn = namespace["_load"]
                self.injector._cached_activation_loader = load_fn
            self._load_fn = load_fn
        return self._load_fn

    def _native(self, packed: int):
        """Packed Python-int lane mask -> backend-native lane vector."""
        sim = self.injector.sim
        if isinstance(sim.values, list):  # compiled: ints are native
            return packed & sim.mask
        from ..sim.vectorized import int_to_words

        return int_to_words(packed & lane_mask(sim.n_lanes), sim.n_words)

    def _run_pass(
        self,
        pending: List[InjectionRequest],
        verdicts: List[Tuple[bool, Optional[int]]],
        horizon: Optional[int],
        admit: Optional[Callable[[InjectionRequest], bool]] = None,
        on_verdict: Optional[Callable[[InjectionRequest, bool], None]] = None,
        skipped: Optional[List[int]] = None,
    ) -> List[InjectionRequest]:
        injector = self.injector
        sim = injector.sim
        golden = injector.golden
        criterion = injector._criterion
        taps = injector.taps
        check = injector.check_interval
        end_of_trace = golden.n_cycles
        stats = self.stats

        width = min(self.max_lanes, len(pending))
        stats.peak_width = max(stats.peak_width, width)
        sim.resize_lanes(width)
        mask = sim.mask
        zero = sim.broadcast(0)
        values = sim.values
        all_lanes = lane_mask(width)

        gate_on = self.cone_gating == "on"
        gate_auto = self.cone_gating == "auto"
        # "auto" re-decides per window from the *live* lane count, so a wide
        # pass whose tail shrinks below the threshold (retirement, repack)
        # starts gating; the plan is built lazily on first use.
        plan: Optional[_GatingPlan] = self._gating_plan() if gate_on else None
        load_fn = self._activation_loader()

        slots: List[List[object]] = [[zero] * tap.delay for tap in taps]
        lane_req: List[Optional[InjectionRequest]] = [None] * width
        lane_lat: List[int] = [0] * width
        free: List[int] = list(range(width - 1, -1, -1))  # pop() -> lowest lane
        deadlines: Dict[int, List[int]] = {}

        # Fault-model state: per-lane plan compilation and force bookkeeping.
        bound = injector.bound_model
        ff_cells = sim.flip_flops
        lane_force: List[
            Optional[Tuple[InjectionPlan, int, List[Tuple[int, int]]]]
        ] = [None] * width
        force_int = 0

        def forced_frontier() -> int:
            """Flip-flop mask every live forcing lane keeps disturbing —
            ORed into the cone-gating frontier so forced state is never
            golden-overwritten or skipped by a gated window."""
            ffm = 0
            bits = force_int
            while bits:
                low = bits & -bits
                iplan, _c0, _rows = lane_force[low.bit_length() - 1]
                for f, _v in iplan.forces:
                    ffm |= 1 << f
                bits ^= low
            return ffm

        active_int = 0
        active_vec = zero
        failed_int = 0
        failed = zero
        ever_used = 0  # lanes that have carried an injection this pass
        frontier = 0
        window = _FULL_WINDOW
        deferred: List[InjectionRequest] = []
        ptr = 0
        n_pending = len(pending)

        def retire_lanes(retire_bits: int) -> None:
            nonlocal active_int, active_vec, failed_int, failed, force_int
            bits = retire_bits
            while bits:
                low = bits & -bits
                lane = low.bit_length() - 1
                bits ^= low
                request = lane_req[lane]
                lane_req[lane] = None
                lane_force[lane] = None
                lane_failed = bool((failed_int >> lane) & 1)
                verdicts[request.key] = (
                    lane_failed,
                    lane_lat[lane] if lane_failed else None,
                )
                if on_verdict is not None:
                    on_verdict(request, lane_failed)
                free.append(lane)
            active_int &= ~retire_bits
            failed_int &= ~retire_bits
            force_int &= ~retire_bits
            active_vec = self._native(active_int)
            failed = self._native(failed_int)

        c = pending[0].cycle
        next_check = c + check
        while True:
            # -- per-lane horizon deadlines: stop observing before cycle c.
            if horizon is not None and c in deadlines:
                expired = 0
                for lane, request in deadlines.pop(c):
                    # A stale entry may point at a lane that retired early
                    # and was refilled — only the original request expires.
                    if lane_req[lane] is request:
                        expired |= 1 << lane
                if expired:
                    retire_lanes(expired)

            # -- activate pending injections scheduled for this cycle.
            activated = 0
            act_requests: List[Tuple[InjectionRequest, int]] = []
            while ptr < n_pending and pending[ptr].cycle == c:
                # The policy gate is consulted before a lane is committed:
                # a rejected request costs nothing (no lane, no simulation)
                # and is recorded as skipped rather than deferred.
                if admit is not None and not admit(pending[ptr]):
                    if skipped is not None:
                        skipped.append(pending[ptr].key)
                    stats.policy_skipped += 1
                    ptr += 1
                    continue
                if not free:
                    break
                request = pending[ptr]
                ptr += 1
                lane = free.pop()
                lane_req[lane] = request
                activated |= 1 << lane
                act_requests.append((request, lane))
                if horizon is not None:
                    deadline = request.cycle + horizon
                    if deadline < end_of_trace:
                        deadlines.setdefault(deadline, []).append((lane, request))
            while ptr < n_pending and pending[ptr].cycle <= c:
                deferred.append(pending[ptr])  # no free lane: next pass
                stats.deferred += 1
                ptr += 1
            if activated:
                stats.refills += (activated & ever_used).bit_count()
                ever_used |= activated
                am = self._native(activated)
                nam = am ^ mask
                load_fn(values, zero, am, nam, golden.ff_state[c])
                for request, lane in act_requests:
                    if bound is None:
                        sim.flip_ff(request.ff_index, 1 << lane)
                        frontier |= 1 << request.ff_index
                    else:
                        iplan = bound.plan(request.ff_index, request.cycle)
                        for f in iplan.flips:
                            sim.flip_ff(f, 1 << lane)
                            frontier |= 1 << f
                        if iplan.forces:
                            rows = [
                                (sim.net_index[ff_cells[f].output_net()], v)
                                for f, v in iplan.forces
                            ]
                            lane_force[lane] = (iplan, request.cycle, rows)
                            force_int |= 1 << lane
                            for f, _v in iplan.forces:
                                frontier |= 1 << f
                for t, tap in enumerate(taps):
                    tap_golden = tap.golden_bits
                    for past in range(c - tap.delay, c):
                        bit = tap_golden[past] if past >= 0 else 0
                        slot = slots[t][past % tap.delay]
                        slots[t][past % tap.delay] = (slot & nam) | (am if bit else zero)
                active_int |= activated
                active_vec = self._native(active_int)
                stats.activations += len(act_requests)
                if gate_on or (gate_auto and active_int.bit_count() <= AUTO_GATE_MAX_LANES):
                    if plan is None:
                        plan = self._gating_plan()
                    window = self._make_window(
                        plan,
                        frontier | (forced_frontier() if force_int else 0),
                        c,
                        slots,
                        check,
                    )
                else:
                    window = _FULL_WINDOW

            if active_int == 0:
                if ptr >= n_pending:
                    break
                c = pending[ptr].cycle  # fast-forward over empty cycles
                next_check = c + check
                frontier = 0  # no active lanes: provably no divergence
                continue

            # -- simulate cycle c.
            applied = golden.applied_inputs[c]
            for bit_pos, value_idx in injector._open_inputs:
                values[value_idx] = mask if (applied >> bit_pos) & 1 else zero
            for t, tap in enumerate(taps):
                values[tap.target_value_idx] = slots[t][c % tap.delay]
            if force_int:
                # Re-assert forcing plans on their duty-on cycles, before the
                # settle — exactly mirroring run_batch and the oracle.
                bits = force_int
                while bits:
                    low = bits & -bits
                    lane = low.bit_length() - 1
                    bits ^= low
                    iplan, cycle0, rows = lane_force[lane]
                    if iplan.force_active(c - cycle0):
                        lv = sim.lane_vec(lane)
                        for q_idx, v in rows:
                            values[q_idx] = (values[q_idx] & ~lv) | (lv if v else zero)
                        stats.forced_cycles += 1

            if window.full:
                sim.eval_comb()
                fail_c = criterion.evaluate(values, golden.outputs[c], mask)
            else:
                stats.gated_cycles += 1
                for clk in sim._clock_nets:
                    values[clk] = zero
                for fn in window.eval_fns:
                    fn(values, mask, sim._fallback_cells)
                stats.partitions_evaluated += window.n_evaluated
                stats.partitions_skipped += plan.n_partitions - window.n_evaluated
                fail_c = self._gated_criterion(window, values, golden.outputs[c], mask, zero)

            newly = fail_c & active_vec & ~failed
            if sim.vec_any(newly):
                failed = failed | newly
                newly_int = sim.vec_to_int(newly)
                failed_int |= newly_int
                while newly_int:
                    low = newly_int & -newly_int
                    lane = low.bit_length() - 1
                    lane_lat[lane] = c - lane_req[lane].cycle
                    newly_int ^= low

            for t, tap in enumerate(taps):
                if not window.full and window.tap_golden[t]:
                    slots[t][c % tap.delay] = mask if tap.golden_bits[c] else zero
                else:
                    slots[t][c % tap.delay] = sim.read_vec(tap.source_value_idx)

            if window.full:
                sim.tick()
            else:
                plan.gated_tick(values, mask, window.gw_mask, golden.ff_state[c + 1])

            c += 1
            stats.cycles_simulated += 1
            stats.lane_cycles += active_int.bit_count()

            # -- retirement check / frontier refresh / repack.
            if c == next_check or c >= end_of_trace:
                next_check = c + check
                if c >= end_of_trace:
                    retire_lanes(active_int)
                    break
                diff, frontier = self._probe_divergence(c, active_vec, slots)
                # A forcing lane that matches golden right now is not done —
                # a later duty-on cycle can re-disturb it — so convergence
                # retirement excludes live force lanes (failure still retires).
                converged = (all_lanes ^ sim.vec_to_int(diff)) & ~force_int
                retire_bits = active_int & (failed_int | converged)
                if retire_bits:
                    stats.early_retired += (retire_bits & ~failed_int).bit_count()
                    retire_lanes(retire_bits)
                    if active_int == 0:
                        if ptr >= n_pending:
                            break
                        c = pending[ptr].cycle
                        next_check = c + check
                        frontier = 0
                        window = _FULL_WINDOW
                        continue
                if (
                    self.repack
                    and ptr >= n_pending
                    and active_int.bit_count() <= width // 2
                    and width - active_int.bit_count() >= MIN_REPACK_GAIN
                ):
                    width, mask, zero, values, all_lanes, failed_int = self._repack(
                        lane_req, lane_lat, slots, free, deadlines, failed, lane_force
                    )
                    active_int = all_lanes  # every surviving lane is live
                    ever_used = all_lanes  # survivors all carry injections
                    active_vec = self._native(active_int)
                    failed = self._native(failed_int)
                    force_int = 0
                    for lane, entry in enumerate(lane_force):
                        if entry is not None:
                            force_int |= 1 << lane
                    stats.repacks += 1
                if gate_on or (gate_auto and active_int.bit_count() <= AUTO_GATE_MAX_LANES):
                    if plan is None:
                        plan = self._gating_plan()
                    window = self._make_window(
                        plan,
                        frontier | (forced_frontier() if force_int else 0),
                        c,
                        slots,
                        check,
                    )
                else:
                    window = _FULL_WINDOW

        return deferred + pending[ptr:]

    # ------------------------------------------------------------- internals

    def _probe_divergence(self, cycle: int, active_vec, slots) -> Tuple[object, int]:
        """Relevant-FF + loopback divergence and the exact FF frontier.

        Returns ``(diff, frontier)``: *diff* is the active-lane vector of
        lanes deviating anywhere that matters (the retirement test), and
        *frontier* the bitmask of relevant flip-flops deviating on any
        active lane (the cone-gating frontier seed).
        """
        injector = self.injector
        sim = injector.sim
        grel = injector.relevant_golden(cycle)
        pairs = injector._relevant_pairs
        row_golden = [
            (q_idx, (grel >> k) & 1) for k, (q_idx, _ff) in enumerate(pairs)
        ]
        diff, rows = sim.diverging_rows(row_golden, active_vec)
        frontier = 0
        while rows:
            low = rows & -rows
            frontier |= 1 << pairs[low.bit_length() - 1][1]
            rows ^= low
        mask = sim.mask
        zero = sim.broadcast(0)
        for t, tap in enumerate(injector.taps):
            tap_golden = tap.golden_bits
            for past in range(max(0, cycle - tap.delay), cycle):
                if past >= injector.golden.n_cycles:
                    continue
                golden_vec = mask if tap_golden[past] else zero
                diff = diff | ((slots[t][past % tap.delay] ^ golden_vec) & active_vec)
        return diff, frontier

    def _make_window(
        self, plan: _GatingPlan, frontier: int, cycle: int, slots, check: int
    ) -> _Window:
        """Turn the exact frontier into gating decisions for one window."""
        injector = self.injector

        # Exact in-flight loopback divergence at the anchoring probe: a tap
        # can carry deviation in its delay slots even when no flip-flop
        # deviates right now.
        sim = injector.sim
        mask = sim.mask
        zero = sim.broadcast(0)
        tap_exact = [False] * len(injector.taps)
        for t, tap in enumerate(injector.taps):
            tap_golden = tap.golden_bits
            for past in range(max(0, cycle - tap.delay), cycle):
                golden_vec = mask if tap_golden[past] else zero
                if sim.vec_any(slots[t][past % tap.delay] ^ golden_vec):
                    tap_exact[t] = True
                    break

        closed = plan.expand_frontier(
            frontier,
            tap_exact,
            check,
            max(1, int(plan.n_ffs * FALLBACK_FRONTIER_FRACTION)),
        )
        if closed is None:
            return _FULL_WINDOW
        expanded, tap_dirty, dirty_inputs = closed

        need = 0
        gw = 0
        for i in range(plan.n_ffs):
            if (plan.ff_cone_ffm[i] & expanded) or (plan.ff_cone_im[i] & dirty_inputs):
                need |= plan.ff_closure[i]
            else:
                gw |= 1 << i

        window = _Window(full=False)
        for idx, bit, fm, im, closure in plan.valid_pairs:
            if (fm & expanded) or (im & dirty_inputs):
                window.live_valid.append((idx, bit))
                need |= closure
            else:
                window.clean_valid.append((idx, bit))
        for idx, bit, fm, im, closure in plan.data_pairs:
            if (fm & expanded) or (im & dirty_inputs):
                window.live_data.append((idx, bit))
                need |= closure
        for t, (fm, im, closure, _tgt_bit) in enumerate(plan.taps):
            if tap_dirty[t]:
                need |= closure
        window.tap_golden = [not dirty for dirty in tap_dirty]

        n_need = need.bit_count()
        if n_need > plan.n_partitions * FALLBACK_NEED_FRACTION:
            return _FULL_WINDOW
        window.gw_mask = gw
        window.n_evaluated = n_need
        fns = plan.partition_fns
        bits = need
        while bits:
            low = bits & -bits
            window.eval_fns.append(fns[low.bit_length() - 1])
            bits ^= low
        return window

    def _gated_criterion(self, window: _Window, values, golden_outputs: int, mask, zero):
        """Per-lane failure mask with clean criterion cones short-circuited.

        Clean nets provably equal their golden bits on every active lane, so
        their strobe contribution to ``beat`` is the broadcast golden bit and
        their payload contribution to ``fail`` is zero.  Inactive lanes may
        disagree, but every consumer masks with the active-lane vector.
        """
        fail = zero
        beat = zero
        have_data = bool(window.live_data)
        for idx, bit in window.live_valid:
            golden_vec = mask if (golden_outputs >> bit) & 1 else zero
            faulty = values[idx]
            fail = fail | (faulty ^ golden_vec)
            if have_data:
                beat = beat | golden_vec | faulty
        if have_data:
            for _idx, bit in window.clean_valid:
                if (golden_outputs >> bit) & 1:
                    beat = beat | mask
                    break  # beat saturated on every lane
        for idx, bit in window.live_data:
            golden_vec = mask if (golden_outputs >> bit) & 1 else zero
            fail = fail | ((values[idx] ^ golden_vec) & beat)
        return fail & mask

    def _repack(self, lane_req, lane_lat, slots, free, deadlines, failed, lane_force):
        """Compact surviving lanes into a narrower batch (gather/scatter).

        Only flip-flop state, loopback slots and the failure mask need
        moving: the next loop iteration re-drives inputs and re-settles the
        combinational logic from the repacked state.
        """
        injector = self.injector
        sim = injector.sim
        keep = [lane for lane, req in enumerate(lane_req) if req is not None]
        ff_states = [sim.gather_lanes(sim.values[q], keep) for q in sim._ff_q]
        slot_states = [[sim.gather_lanes(vec, keep) for vec in pipeline] for pipeline in slots]
        failed_int = sim.gather_lanes(failed, keep)

        new_width = max(1, len(keep))
        sim.resize_lanes(new_width)
        mask = sim.mask
        zero = sim.broadcast(0)
        values = sim.values  # numpy reallocates on resize
        # FF rows use the bulk int->native conversion (O(width/64) words);
        # the handful of tap slots go through the generic per-lane scatter.
        for q, packed in zip(sim._ff_q, ff_states):
            values[q] = self._native(packed)
        for t, pipeline in enumerate(slot_states):
            for k, packed in enumerate(pipeline):
                slots[t][k] = sim.scatter_lanes(zero, range(new_width), packed)

        remap = {old: new for new, old in enumerate(keep)}
        new_req: List[Optional[InjectionRequest]] = [None] * new_width
        new_lat = [0] * new_width
        new_force: List[Optional[Tuple]] = [None] * new_width
        for old, new in remap.items():
            new_req[new] = lane_req[old]
            new_lat[new] = lane_lat[old]
            new_force[new] = lane_force[old]
        lane_req[:] = new_req
        lane_lat[:] = new_lat
        lane_force[:] = new_force
        free[:] = []
        for cycle_key in list(deadlines):
            deadlines[cycle_key] = [
                (remap[lane], req)
                for lane, req in deadlines[cycle_key]
                if lane in remap
            ]
            if not deadlines[cycle_key]:
                del deadlines[cycle_key]
        return new_width, mask, zero, values, lane_mask(new_width), failed_int
