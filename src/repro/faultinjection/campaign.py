"""Statistical fault-injection campaign orchestration.

Implements the paper's reference-data generation: "for each of the 1054
flip-flops 170 fault injection simulations were performed", with faults
injected "at different times during the active phase of the simulation".

Scheduling strategy
-------------------
Injection times are drawn per flip-flop, without replacement, from a pool of
*time slots* sampled uniformly inside the active window.  How the draws are
*executed* is a separate knob (``scheduler=``):

``adaptive`` (default)
    All draws feed one long-lived
    :class:`~repro.faultinjection.scheduler.AdaptiveScheduler`: lanes are
    activated at their own injection cycles, retired lanes are refilled
    from the pending queue, and drained passes are compacted — so the
    whole campaign runs in a handful of saturated forward passes.

``batch``
    The paper-faithful reference execution: all injections sharing a time
    slot are simulated together as bit-parallel lanes of a single forward
    run (see :class:`~repro.faultinjection.injector.FaultInjector`), so the
    number of forward simulations is bounded by ``n_time_slots ×
    ceil(lanes / max_lanes)`` instead of ``n_ffs × n_injections``.

Per-injection verdicts and latencies are bit-identical between the two
(differentially verified per fuzz seed), so the per-flip-flop FDR results do
not depend on the choice; only the engine-cost metrics
(``n_forward_runs``, ``total_lane_cycles``) reflect the execution shape.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..netlist.core import Netlist
from ..sim.testbench import GoldenTrace, Testbench
from .classify import FailureCriterion
from .fdr import FdrEstimate
from .injector import FaultInjector
from .scheduler import EXECUTION_SCHEDULERS

__all__ = ["FlipFlopResult", "CampaignResult", "StatisticalFaultCampaign"]


@dataclass
class FlipFlopResult:
    """Per-flip-flop campaign outcome."""

    ff_name: str
    n_injections: int = 0
    n_failures: int = 0
    latency_sum: int = 0

    @property
    def fdr(self) -> float:
        """Functional De-Rating factor: failures / injections.

        ``nan`` when the flip-flop received no injections — an unmeasured
        flip-flop has *unknown* de-rating, not a perfect 0.0 (which would
        silently rank it as the most reliable state bit in every report
        and train regressors on fabricated labels).
        """
        if self.n_injections == 0:
            return float("nan")
        return self.n_failures / self.n_injections

    @property
    def mean_error_latency(self) -> Optional[float]:
        """Mean cycles from SEU to observable failure (failed runs only)."""
        if self.n_failures == 0:
            return None
        return self.latency_sum / self.n_failures

    @property
    def estimate(self) -> FdrEstimate:
        return FdrEstimate(self.n_injections, self.n_failures)


@dataclass
class CampaignResult:
    """Complete campaign record, serializable for caching and reports."""

    #: Serialization schema version written by :meth:`to_payload`.  Bump when
    #: the payload layout changes; :meth:`from_payload` rejects newer versions
    #: so stale readers fail loudly instead of misparsing cached results.
    SCHEMA_VERSION = 1

    circuit: str
    n_injections: int
    seed: int
    results: Dict[str, FlipFlopResult] = field(default_factory=dict)
    n_forward_runs: int = 0
    total_lane_cycles: int = 0
    wall_seconds: float = 0.0

    def fdr(self, ff_name: str) -> float:
        return self.results[ff_name].fdr

    def fdr_vector(self, ff_order: Sequence[str]) -> List[float]:
        """FDR values in the given flip-flop order."""
        return [self.results[name].fdr for name in ff_order]

    def mean_fdr(self) -> float:
        """Mean FDR over the flip-flops that were actually measured.

        Flip-flops with zero injections contribute ``nan`` individually
        (see :attr:`FlipFlopResult.fdr`) and are excluded here; ``nan`` is
        returned only when *nothing* was measured.
        """
        measured = [r.fdr for r in self.results.values() if r.n_injections > 0]
        if not measured:
            return float("nan")
        return sum(measured) / len(measured)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable dict form (shared by :meth:`to_json` and the
        campaign result store)."""
        return {
            "version": self.SCHEMA_VERSION,
            "circuit": self.circuit,
            "n_injections": self.n_injections,
            "seed": self.seed,
            "n_forward_runs": self.n_forward_runs,
            "total_lane_cycles": self.total_lane_cycles,
            "wall_seconds": self.wall_seconds,
            "results": {
                name: [r.n_injections, r.n_failures, r.latency_sum]
                for name, r in self.results.items()
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload())

    @classmethod
    def from_payload(cls, payload: Dict) -> "CampaignResult":
        version = payload.get("version", 0)
        if version > cls.SCHEMA_VERSION:
            raise ValueError(
                f"campaign result written by a newer schema "
                f"(version {version} > supported {cls.SCHEMA_VERSION})"
            )
        result = cls(
            circuit=payload["circuit"],
            n_injections=payload["n_injections"],
            seed=payload["seed"],
            n_forward_runs=payload.get("n_forward_runs", 0),
            total_lane_cycles=payload.get("total_lane_cycles", 0),
            wall_seconds=payload.get("wall_seconds", 0.0),
        )
        for name, fields in payload["results"].items():
            n_inj, n_fail = fields[0], fields[1]
            latency_sum = fields[2] if len(fields) > 2 else 0
            result.results[name] = FlipFlopResult(name, n_inj, n_fail, latency_sum)
        return result

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_payload(json.loads(text))


class StatisticalFaultCampaign:
    """Runs per-flip-flop SEU campaigns against a testbench workload.

    Parameters
    ----------
    netlist / testbench / criterion:
        The device under test, its workload and the functional-failure
        definition.
    active_window:
        ``(first, last)`` injection-cycle range; defaults to the whole
        trace minus a small warm-up.
    golden:
        Reuse a previously recorded golden trace (otherwise recorded here).
    max_lanes:
        Cap on bit-parallel lanes per forward run.  256 is a good trade-off
        for the default compiled backend in CPython; the ``numpy`` backend
        profits from much wider batches (thousands of lanes).
    check_interval:
        Cycles between the injector's early-retirement checks.
    backend:
        Simulation substrate (``"compiled"``, ``"numpy"`` or ``"fused"``,
        see :mod:`repro.sim.backend`); results are backend-invariant.
    scheduler:
        Execution strategy: ``"adaptive"`` (lane refill across injection
        cycles, default) or ``"batch"`` (one forward run per time slot).
        Per-flip-flop results are scheduler-invariant.
    scheduler_lanes:
        Lane capacity of the adaptive scheduler's passes; ``None``
        (default) picks the backend-tuned width — refill keeps wide
        batches full, so the adaptive default is much wider than
        ``max_lanes``.
    fault_model:
        Registered fault model applied at every drawn ``(cycle, ff)``
        site (see :mod:`repro.faultinjection.faults`); ``None`` keeps
        the paper's single-bit SEU semantics.
    """

    SCHEDULERS = EXECUTION_SCHEDULERS

    def __init__(
        self,
        netlist: Netlist,
        testbench: Testbench,
        criterion: FailureCriterion,
        active_window: Optional[Tuple[int, int]] = None,
        golden: Optional[GoldenTrace] = None,
        max_lanes: int = 256,
        check_interval: int = 8,
        backend: str = "compiled",
        scheduler: str = "adaptive",
        scheduler_lanes: Optional[int] = None,
        fault_model: Optional[object] = None,
    ) -> None:
        if scheduler not in self.SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose from {self.SCHEDULERS}"
            )
        self.scheduler = scheduler
        self.scheduler_lanes = scheduler_lanes
        self.netlist = netlist
        self.testbench = testbench
        self.criterion = criterion
        self.golden = golden if golden is not None else testbench.run_golden()
        if active_window is None:
            active_window = (
                min(8, self.golden.n_cycles - 1),
                self.golden.n_cycles - 1,
            )
        first, last = active_window
        if not 0 <= first < last <= self.golden.n_cycles:
            raise ValueError(f"invalid active window {active_window}")
        self.active_window = (first, last)
        self.max_lanes = max_lanes
        self.injector = FaultInjector(
            netlist,
            testbench,
            self.golden,
            criterion,
            check_interval=check_interval,
            backend=backend,
            fault_model=fault_model,
        )

    def run(
        self,
        n_injections: int = 170,
        ff_names: Optional[Sequence[str]] = None,
        seed: int = 0,
        n_time_slots: Optional[int] = None,
        horizon: Optional[int] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CampaignResult:
        """Run the campaign and estimate the FDR of every targeted flip-flop.

        ``ff_names`` restricts the campaign to a subset (the paper's
        reduced-cost training campaigns); default is all flip-flops.
        """
        start_time = time.monotonic()
        if ff_names is None:
            ff_names = [ff.name for ff in self.netlist.flip_flops()]
        rng = random.Random(seed)
        first, last = self.active_window
        window = list(range(first, last))
        if n_time_slots is None:
            n_time_slots = min(len(window), max(n_injections, int(1.5 * n_injections)))
        if n_time_slots < n_injections:
            raise ValueError(
                f"need at least {n_injections} time slots in the active window, "
                f"got {n_time_slots}"
            )
        slots = sorted(rng.sample(window, n_time_slots))

        result = CampaignResult(
            circuit=self.netlist.name, n_injections=n_injections, seed=seed
        )
        buckets: Dict[int, List[int]] = {}
        for name in ff_names:
            result.results[name] = FlipFlopResult(name)
            ff_idx = self.injector.ff_index(name)
            for cycle in rng.sample(slots, n_injections):
                buckets.setdefault(cycle, []).append(ff_idx)

        ff_order = [ff.name for ff in self.netlist.flip_flops()]
        if self.scheduler == "adaptive":
            requests = [
                (cycle, ff_idx)
                for cycle in sorted(buckets)
                for ff_idx in buckets[cycle]
            ]
            scheduler_progress = None
            if progress is not None:
                n_buckets = len(buckets)

                def scheduler_progress(done: int, total: int) -> None:
                    # Map completed injections onto the bucket scale so both
                    # schedulers report comparable (done, total) ticks.
                    progress(round(done / max(1, total) * n_buckets), n_buckets)

            outcome = self.injector.run_scheduled(
                requests,
                horizon=horizon,
                max_lanes=self.scheduler_lanes,
                progress=scheduler_progress,
            )
            for (cycle, ff_idx), (failed, latency) in zip(requests, outcome.verdicts):
                record = result.results[ff_order[ff_idx]]
                record.n_injections += 1
                if failed:
                    record.n_failures += 1
                    record.latency_sum += latency
            result.n_forward_runs = outcome.stats.n_passes
            result.total_lane_cycles = outcome.stats.lane_cycles
        else:
            done = 0
            total = len(buckets)
            for cycle in sorted(buckets):
                lanes = buckets[cycle]
                for chunk_start in range(0, len(lanes), self.max_lanes):
                    chunk = lanes[chunk_start : chunk_start + self.max_lanes]
                    outcome = self.injector.run_batch(cycle, chunk, horizon=horizon)
                    result.n_forward_runs += 1
                    result.total_lane_cycles += outcome.cycles_simulated * len(chunk)
                    for lane, ff_idx in enumerate(chunk):
                        record = result.results[ff_order[ff_idx]]
                        record.n_injections += 1
                        if (outcome.failed_mask >> lane) & 1:
                            record.n_failures += 1
                            record.latency_sum += outcome.latencies.get(lane, 0)
                done += 1
                if progress is not None:
                    progress(done, total)
        result.wall_seconds = time.monotonic() - start_time
        return result
