"""Functional-failure criteria.

The paper classifies a fault-injection run as a functional failure when "the
final received packages contained payload corruption or the circuit stopped
sending or receiving data".  :class:`PacketInterfaceCriterion` expresses
exactly this over the packet receive interface:

* any deviation of the valid strobe pattern (missing, extra or shifted
  beats — covers "stopped sending or receiving data"), or
* a data/SOP/EOP mismatch on a cycle where a beat is presented ("payload
  corruption").

Criteria are *bound* to a simulator once (resolving net names to indices)
and then evaluated per cycle over all bit-parallel fault lanes at once.
Binding and evaluation are backend-agnostic: any
:class:`~repro.sim.backend.SimBackend` works, because evaluation only uses
``& | ^`` on lane vectors (Python ints on the compiled backend, ``uint64``
lane blocks on the numpy backend).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..netlist.core import Netlist
from ..sim.backend import SimBackend

__all__ = [
    "FailureCriterion",
    "PacketInterfaceCriterion",
    "AnyOutputCriterion",
    "BoundCriterion",
]


class BoundCriterion:
    """A criterion resolved against a specific simulator's net indices."""

    def __init__(
        self,
        valid_pairs: Sequence[Tuple[int, int]],
        data_pairs: Sequence[Tuple[int, int]],
    ) -> None:
        # Each pair is (simulator value index, golden output bit position).
        self._valid = list(valid_pairs)
        self._data = list(data_pairs)

    @property
    def valid_pairs(self) -> List[Tuple[int, int]]:
        """Strobe (value-index, golden-bit) pairs; any deviation fails."""
        return list(self._valid)

    @property
    def data_pairs(self) -> List[Tuple[int, int]]:
        """Payload (value-index, golden-bit) pairs; checked on beat cycles."""
        return list(self._data)

    def evaluate(self, values, golden_outputs: int, mask):
        """Per-lane failure mask for one cycle.

        ``values`` is the simulator's net-value array after combinational
        settle (lane vectors in the backend's native representation);
        ``golden_outputs`` the packed golden output vector for the same
        cycle.  Returns a lane vector of failing lanes.
        """
        fail = 0
        beat_any = 0
        for sim_idx, gold_bit in self._valid:
            golden = mask if (golden_outputs >> gold_bit) & 1 else 0
            faulty = values[sim_idx]
            fail |= faulty ^ golden
            beat_any |= golden | faulty
        for sim_idx, gold_bit in self._data:
            golden = mask if (golden_outputs >> gold_bit) & 1 else 0
            fail |= (values[sim_idx] ^ golden) & beat_any
        return fail & mask


class FailureCriterion:
    """Base class: defines which output deviations count as failures."""

    def observable_nets(self) -> List[str]:
        """Outputs whose deviation can constitute a failure."""
        raise NotImplementedError

    def bind(self, netlist: Netlist, sim: SimBackend) -> BoundCriterion:
        raise NotImplementedError


@dataclass
class PacketInterfaceCriterion(FailureCriterion):
    """The paper's criterion over a packet (stream) interface.

    Parameters
    ----------
    valid_nets:
        Strobe outputs; any mismatch against golden is a failure.
    data_nets:
        Payload/flag outputs; mismatches count only on cycles where either
        the golden or the faulty run presents a beat.
    """

    valid_nets: List[str]
    data_nets: List[str]

    def observable_nets(self) -> List[str]:
        return list(self.valid_nets) + list(self.data_nets)

    def bind(self, netlist: Netlist, sim: SimBackend) -> BoundCriterion:
        out_bit = {name: i for i, name in enumerate(netlist.outputs)}
        valid_pairs = [(sim.net_index[n], out_bit[n]) for n in self.valid_nets]
        data_pairs = [(sim.net_index[n], out_bit[n]) for n in self.data_nets]
        return BoundCriterion(valid_pairs, data_pairs)


@dataclass
class AnyOutputCriterion(FailureCriterion):
    """Strictest criterion: any primary-output deviation is a failure.

    Useful for small circuits without a packet interface (the circuit zoo)
    and as an upper bound in ablation studies.
    """

    nets: List[str]

    @classmethod
    def all_outputs(cls, netlist: Netlist) -> "AnyOutputCriterion":
        return cls(nets=list(netlist.outputs))

    def observable_nets(self) -> List[str]:
        return list(self.nets)

    def bind(self, netlist: Netlist, sim: SimBackend) -> BoundCriterion:
        out_bit = {name: i for i, name in enumerate(netlist.outputs)}
        valid_pairs = [(sim.net_index[n], out_bit[n]) for n in self.nets]
        return BoundCriterion(valid_pairs, [])
