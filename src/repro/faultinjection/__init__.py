"""SEU fault-injection: models, injector, campaigns, FDR statistics."""

from .campaign import CampaignResult, FlipFlopResult, StatisticalFaultCampaign
from .classify import (
    AnyOutputCriterion,
    BoundCriterion,
    FailureCriterion,
    PacketInterfaceCriterion,
)
from .faults import (
    BoundFaultModel,
    FaultModel,
    FaultModelError,
    InjectionPlan,
    IntermittentModel,
    MbuModel,
    SetFault,
    SetSweepModel,
    SeuFault,
    SeuModel,
    StuckAtModel,
    available_fault_models,
    canonical_fault_model,
    ff_adjacency,
    parse_fault_model,
    register_fault_model,
)
from .fdr import FdrEstimate, required_sample_size, wilson_interval
from .injector import BatchOutcome, FaultInjector, relevant_flip_flops
from .scheduler import (
    AdaptiveScheduler,
    InjectionRequest,
    ScheduledOutcome,
    SchedulerStats,
)

__all__ = [
    "CampaignResult",
    "FlipFlopResult",
    "StatisticalFaultCampaign",
    "AnyOutputCriterion",
    "BoundCriterion",
    "FailureCriterion",
    "PacketInterfaceCriterion",
    "BoundFaultModel",
    "FaultModel",
    "FaultModelError",
    "InjectionPlan",
    "IntermittentModel",
    "MbuModel",
    "SetFault",
    "SetSweepModel",
    "SeuFault",
    "SeuModel",
    "StuckAtModel",
    "available_fault_models",
    "canonical_fault_model",
    "ff_adjacency",
    "parse_fault_model",
    "register_fault_model",
    "FdrEstimate",
    "required_sample_size",
    "wilson_interval",
    "BatchOutcome",
    "FaultInjector",
    "relevant_flip_flops",
    "AdaptiveScheduler",
    "InjectionRequest",
    "ScheduledOutcome",
    "SchedulerStats",
]
