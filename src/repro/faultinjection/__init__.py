"""SEU fault-injection: models, injector, campaigns, FDR statistics."""

from .campaign import CampaignResult, FlipFlopResult, StatisticalFaultCampaign
from .classify import (
    AnyOutputCriterion,
    BoundCriterion,
    FailureCriterion,
    PacketInterfaceCriterion,
)
from .faults import SetFault, SeuFault
from .fdr import FdrEstimate, required_sample_size, wilson_interval
from .injector import BatchOutcome, FaultInjector, relevant_flip_flops
from .scheduler import (
    AdaptiveScheduler,
    InjectionRequest,
    ScheduledOutcome,
    SchedulerStats,
)

__all__ = [
    "CampaignResult",
    "FlipFlopResult",
    "StatisticalFaultCampaign",
    "AnyOutputCriterion",
    "BoundCriterion",
    "FailureCriterion",
    "PacketInterfaceCriterion",
    "SetFault",
    "SeuFault",
    "FdrEstimate",
    "required_sample_size",
    "wilson_interval",
    "BatchOutcome",
    "FaultInjector",
    "relevant_flip_flops",
    "AdaptiveScheduler",
    "InjectionRequest",
    "ScheduledOutcome",
    "SchedulerStats",
]
