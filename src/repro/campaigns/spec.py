"""Self-contained campaign specifications.

A :class:`CampaignSpec` captures *everything* that determines a campaign's
per-flip-flop results: the circuit preset, the workload generator
parameters, the failure criterion, the injection budget and the RNG seeds.
Because the spec is a small frozen dataclass it can be

* hashed into a content address for the result store
  (:meth:`CampaignSpec.cache_key` / :meth:`CampaignSpec.family_key`), and
* pickled to worker processes, which rebuild the netlist, testbench and
  golden trace locally instead of shipping megabytes of simulator state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..circuits.library import get_circuit
from ..circuits.workloads import Workload, build_workload_for, default_criterion
from ..faultinjection.faults import FaultModelError, canonical_fault_model, parse_fault_model
from ..faultinjection.scheduler import EXECUTION_SCHEDULERS
from .policy import DEFAULT_TARGET_MARGIN, SAMPLING_POLICIES
from ..faultinjection.classify import (
    AnyOutputCriterion,
    FailureCriterion,
    PacketInterfaceCriterion,
)
from ..netlist.core import Netlist
from ..sim.backend import BACKEND_NAMES
from ..sim.testbench import GoldenTrace

__all__ = ["CampaignSpec", "CampaignContext", "build_context"]

SCHEDULES = ("stream", "legacy")
CRITERIA = ("packet", "any_output", "observed")


@dataclass(frozen=True)
class CampaignSpec:
    """All parameters that determine a fault-injection campaign.

    ``schedule`` selects the injection-time scheduler:

    * ``"legacy"`` reproduces
      :meth:`~repro.faultinjection.campaign.StatisticalFaultCampaign.run`
      draw-for-draw, so the engine's output is bit-identical to the serial
      reference implementation for the same seed;
    * ``"stream"`` draws injection times as a prefix-stable per-flip-flop
      stream (see :func:`repro.campaigns.partition.stream_buckets`), which
      lets the result store extend a cached *n*-injection campaign to
      *m > n* injections by simulating only the ``m - n`` delta.

    ``backend`` selects the simulation substrate (``"compiled"``,
    ``"numpy"`` or ``"fused"``; see :mod:`repro.sim.backend`) and
    ``scheduler`` the execution strategy (``"adaptive"`` lane refill across
    injection cycles — the default — or ``"batch"`` per-time-slot forward
    runs; see :mod:`repro.faultinjection.scheduler`).  Per-lane verdicts
    and latencies are invariant under both knobs — differentially verified
    by ``repro.verify`` — so they are execution details: both are
    **excluded from the cache identity**, and snapshots produced with one
    backend/scheduler seed or satisfy runs on any other.
    """

    circuit: str = "xgmac_mini"
    n_frames: int = 8
    min_len: int = 4
    max_len: int = 7
    gap: int = 14
    workload_seed: int = 1
    n_injections: int = 60
    seed: int = 0
    schedule: str = "stream"
    criterion: str = "packet"
    ff_names: Optional[Tuple[str, ...]] = None
    n_time_slots: Optional[int] = None
    horizon: Optional[int] = None
    max_lanes: int = 256
    check_interval: int = 8
    backend: str = "compiled"
    scheduler: str = "adaptive"
    policy: str = "flat"
    target_margin: float = DEFAULT_TARGET_MARGIN
    #: Registered fault model applied at every drawn ``(cycle, ff)`` site
    #: (see :mod:`repro.faultinjection.faults`).  Stored canonically
    #: (sorted explicit parameters) so equivalent spellings share one
    #: cache identity; the default ``"seu"`` is *excluded* from the
    #: identity dict so pre-registry SEU store keys remain valid.
    fault_model: str = "seu"

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ValueError(f"unknown schedule {self.schedule!r}; choose from {SCHEDULES}")
        if self.policy not in SAMPLING_POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {SAMPLING_POLICIES}"
            )
        if not 0.0 <= self.target_margin < 1.0:
            raise ValueError("target_margin must be in [0, 1)")
        if self.policy == "sequential" and self.schedule != "stream":
            raise ValueError(
                "policy='sequential' requires the prefix-stable 'stream' "
                "schedule (legacy draws reshuffle when the budget changes)"
            )
        if self.criterion not in CRITERIA:
            raise ValueError(f"unknown criterion {self.criterion!r}; choose from {CRITERIA}")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKEND_NAMES}"
            )
        if self.scheduler not in EXECUTION_SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {EXECUTION_SCHEDULERS}"
            )
        if self.n_injections <= 0:
            raise ValueError("n_injections must be positive")
        model = parse_fault_model(self.fault_model)
        if not model.supports_ff_campaign:
            raise FaultModelError(
                f"fault model {model.name!r} does not target flip-flops and "
                f"cannot drive a statistical campaign"
            )
        object.__setattr__(self, "fault_model", canonical_fault_model(model))

    # ------------------------------------------------------------- identity

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        if payload["ff_names"] is not None:
            payload["ff_names"] = list(payload["ff_names"])
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSpec":
        data = dict(payload)
        if data.get("ff_names") is not None:
            data["ff_names"] = tuple(data["ff_names"])  # type: ignore[arg-type]
        return cls(**data)  # type: ignore[arg-type]

    def _hash_of(self, payload: Dict[str, object]) -> str:
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()[:16]

    def _identity_dict(self) -> Dict[str, object]:
        """Fields that determine the campaign's *results*.

        The simulation backend and the execution scheduler are deliberately
        absent: every backend × scheduler combination produces bit-identical
        per-lane outcomes (differentially verified), so cached results are
        shared across all of them and the original compiled-backend cache
        keys stay valid.  The sampling policy (and its target margin) is
        excluded for the same reason: per-draw verdicts are
        policy-invariant, so flat and sequential runs of one family share
        draws and store documents — the store namespaces the policy's
        *realized* snapshots separately (see
        :func:`repro.campaigns.policy.policy_signature`).
        """
        payload = self.to_dict()
        payload.pop("backend", None)
        payload.pop("scheduler", None)
        payload.pop("policy", None)
        payload.pop("target_margin", None)
        if payload.get("fault_model") == "seu":
            # Single-bit SEUs are the pre-registry default; dropping the
            # field keeps every cached SEU store key valid.
            payload.pop("fault_model")
        return payload

    def cache_key(self) -> str:
        """Content address of this exact campaign (injection budget included)."""
        return self._hash_of(self._identity_dict())

    def family_key(self) -> str:
        """Content address of the campaign *family* sharing one store file.

        For the ``stream`` schedule the injection budget is excluded: all
        budgets of the same family share injection draws as prefixes, so a
        cached 50-injection snapshot can seed a 170-injection run.  The
        ``legacy`` schedule reshuffles everything when the budget changes,
        so there the budget stays part of the identity.
        """
        payload = self._identity_dict()
        if self.schedule == "stream":
            payload.pop("n_injections")
        return self._hash_of(payload)

    def with_injections(self, n_injections: int) -> "CampaignSpec":
        return replace(self, n_injections=n_injections)

    @classmethod
    def from_dataset_spec(
        cls,
        dataset_spec,
        schedule: str = "legacy",
        n_injections: Optional[int] = None,
        backend: str = "compiled",
        scheduler: str = "adaptive",
        policy: str = "flat",
        target_margin: float = DEFAULT_TARGET_MARGIN,
        fault_model: Optional[str] = None,
    ) -> "CampaignSpec":
        """Mirror a :class:`repro.data.DatasetSpec` (duck-typed to avoid the
        circular import; ``repro.data`` builds on this package).

        A dataset spec's ``criterion`` of ``"auto"`` resolves here to the
        workload registry's default for the circuit, so the campaign spec —
        and with it the result-store content address — always names a
        concrete criterion.  ``fault_model`` defaults to the dataset spec's
        own (itself defaulting to ``"seu"``); pass an explicit value to
        override it.
        """
        criterion = getattr(dataset_spec, "criterion", "auto")
        if criterion == "auto":
            criterion = default_criterion(dataset_spec.circuit)
        if fault_model is None:
            fault_model = getattr(dataset_spec, "fault_model", "seu")
        return cls(
            backend=backend,
            scheduler=scheduler,
            policy=policy,
            target_margin=target_margin,
            fault_model=fault_model,
            circuit=dataset_spec.circuit,
            n_frames=dataset_spec.n_frames,
            min_len=dataset_spec.min_len,
            max_len=dataset_spec.max_len,
            gap=dataset_spec.gap,
            workload_seed=dataset_spec.workload_seed,
            n_injections=(
                n_injections if n_injections is not None else dataset_spec.n_injections
            ),
            seed=dataset_spec.campaign_seed,
            schedule=schedule,
            criterion=criterion,
        )


@dataclass
class CampaignContext:
    """Instantiated campaign environment (netlist, workload, criterion).

    The golden trace is recorded lazily: the engine's planning stage only
    needs the active window (available from the workload), and worker
    processes record their own golden traces anyway.
    """

    netlist: Netlist
    workload: Workload
    criterion: FailureCriterion
    golden: Optional[GoldenTrace] = field(default=None, repr=False)

    @property
    def active_window(self) -> Tuple[int, int]:
        return self.workload.active_window

    def window_cycles(self) -> List[int]:
        first, last = self.workload.active_window
        n_cycles = self.workload.testbench.n_cycles
        if not 0 <= first < last <= n_cycles:
            raise ValueError(f"invalid active window {(first, last)}")
        return list(range(first, last))

    def ensure_golden(self) -> GoldenTrace:
        if self.golden is None:
            from ..obs import get_telemetry

            with get_telemetry().tracer.span(
                "golden_trace",
                circuit=self.netlist.name,
                n_cycles=self.workload.testbench.n_cycles,
            ):
                self.golden = self.workload.testbench.run_golden()
        return self.golden

    def ff_names(self, spec: CampaignSpec) -> List[str]:
        if spec.ff_names is not None:
            return list(spec.ff_names)
        return [ff.name for ff in self.netlist.flip_flops()]


def build_context(spec: CampaignSpec) -> CampaignContext:
    """Instantiate the netlist, workload and criterion a spec describes.

    The workload comes from the circuit's registered builder
    (:func:`repro.circuits.workloads.build_workload_for`): frame streaming
    for the MAC presets, the generic burst testbench for the library
    circuits, or whatever a downstream package registered.
    """
    from ..obs import get_telemetry

    with get_telemetry().tracer.span("synthesize", circuit=spec.circuit):
        netlist = get_circuit(spec.circuit)
        workload = build_workload_for(
            spec.circuit,
            netlist,
            n_frames=spec.n_frames,
            min_len=spec.min_len,
            max_len=spec.max_len,
            gap=spec.gap,
            seed=spec.workload_seed,
        )
    if spec.criterion == "packet":
        criterion: FailureCriterion = PacketInterfaceCriterion(
            workload.valid_nets, workload.data_nets
        )
    elif spec.criterion == "observed":
        criterion = AnyOutputCriterion(
            nets=list(workload.valid_nets) + list(workload.data_nets)
        )
    else:
        criterion = AnyOutputCriterion.all_outputs(netlist)
    return CampaignContext(netlist=netlist, workload=workload, criterion=criterion)
