"""Content-addressed, resumable campaign result store.

One JSON document per campaign *family* (see
:meth:`~repro.campaigns.spec.CampaignSpec.family_key`), holding

* ``snapshots`` — finished :class:`CampaignResult` payloads keyed by their
  injection budget.  A re-run of a stored budget costs zero forward
  simulations; with the ``stream`` schedule a smaller stored budget seeds an
  incremental top-up (only the delta draws are simulated);
* ``partial`` — a mid-run checkpoint (completed time-slot buckets plus the
  accumulated per-flip-flop counts) written on a throttled interval, so an
  interrupted campaign resumes where it stopped.

Writes are atomic and durable (temp file + ``fsync`` + ``os.replace``), so
a crash — even a power loss — mid-write never corrupts previously stored
results.  A shard file that is nonetheless unreadable (torn by an external
writer, hand-edited, bit-rotted) is *quarantined*: renamed to
``<name>.corrupt`` and counted in the ``store.corrupt_files`` telemetry
counter, so operators see the data loss instead of a silent cache miss —
and the damaged bytes stay on disk for postmortem inspection.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..faultinjection.campaign import CampaignResult
from ..obs import get_telemetry
from .spec import CampaignSpec

__all__ = ["CampaignStore"]

STORE_VERSION = 1


def _record_lookup(kind: str, hit: bool) -> None:
    """Count one store consultation and refresh the aggregate hit rate.

    Counters: ``store.<kind>_hit`` / ``store.<kind>_miss`` per lookup kind
    (``exact`` snapshot, ``snapshot`` seed, ``partial`` checkpoint) plus the
    rollups ``store.hits`` / ``store.lookups``; gauge ``store.hit_rate`` is
    the process-lifetime ratio of the two.
    """
    registry = get_telemetry().registry
    registry.counter(f"store.{kind}_{'hit' if hit else 'miss'}").inc()
    hits = registry.counter("store.hits")
    lookups = registry.counter("store.lookups")
    lookups.inc()
    if hit:
        hits.inc()
    registry.gauge("store.hit_rate").set(hits.value / lookups.value)


class CampaignStore:
    """JSON-on-disk store keyed by campaign-spec hash."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, spec: CampaignSpec) -> Path:
        return self.root / f"campaign_{spec.circuit}_{spec.family_key()}.json"

    # ----------------------------------------------------------------- io

    def _read(self, spec: CampaignSpec) -> Optional[Dict]:
        """Parse the shard for *spec*; ``None`` for any unusable document.

        A truncated or hand-edited shard must never crash a campaign — the
        engine treats ``None`` as "nothing cached" and recomputes — so shape
        is validated here along with JSON well-formedness.  Unusable files
        are quarantined (renamed to ``*.corrupt`` + ``store.corrupt_files``
        counter) rather than silently shadowing every future lookup; only a
        *newer* ``store_version`` is left in place untouched, since the file
        is presumably healthy for the newer code that wrote it.
        """
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
        except OSError as exc:
            # Unreadable but present (permissions, I/O error): renaming
            # would likely fail too — count it, leave it.
            self._count_corrupt(path, f"unreadable: {exc}", rename=False)
            return None
        except json.JSONDecodeError as exc:
            self._quarantine(path, f"invalid JSON: {exc}")
            return None
        if not isinstance(doc, dict):
            self._quarantine(path, "top-level document is not an object")
            return None
        if doc.get("store_version", 0) > STORE_VERSION:
            return None
        if doc.get("family") != spec.family_key():
            self._quarantine(path, "family key mismatch")
            return None
        if not isinstance(doc.get("snapshots"), dict):
            self._quarantine(path, "missing snapshots map")
            return None
        partial = doc.get("partial")
        if partial is not None and not isinstance(partial, dict):
            self._quarantine(path, "malformed partial checkpoint")
            return None
        return doc

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a damaged shard aside as ``<name>.corrupt`` for postmortem."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            self._count_corrupt(path, reason, rename=False)
            return
        self._count_corrupt(path, reason, rename=True)

    @staticmethod
    def _count_corrupt(path: Path, reason: str, rename: bool) -> None:
        telemetry = get_telemetry()
        telemetry.registry.counter("store.corrupt_files").inc()
        if telemetry.active:
            telemetry.emit(
                {
                    "event": "store_corrupt",
                    "path": str(path),
                    "reason": reason,
                    "quarantined": rename,
                }
            )

    def _write(self, spec: CampaignSpec, doc: Dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        # fsync before the rename: os.replace alone is atomic against
        # concurrent readers but not against power loss — the metadata can
        # land before the data blocks, leaving a truncated "committed" file.
        with open(tmp, "w") as fh:
            fh.write(json.dumps(doc))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_dir(path.parent)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Best-effort directory fsync so the rename itself is durable."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync unsupported on dirs
            pass
        finally:
            os.close(fd)

    def _doc(self, spec: CampaignSpec) -> Dict:
        doc = self._read(spec)
        if doc is None:
            doc = {
                "store_version": STORE_VERSION,
                "family": spec.family_key(),
                "schedule": spec.schedule,
                "spec": spec.to_dict(),
                "snapshots": {},
                "partial": None,
            }
        return doc

    # ----------------------------------------------------------- snapshots

    def load_exact(self, spec: CampaignSpec) -> Optional[CampaignResult]:
        """The stored result for exactly ``spec.n_injections``, if any."""
        result = self._load_exact(spec)
        _record_lookup("exact", result is not None)
        return result

    def _load_exact(self, spec: CampaignSpec) -> Optional[CampaignResult]:
        doc = self._read(spec)
        if doc is None:
            return None
        payload = doc["snapshots"].get(str(spec.n_injections))
        if not isinstance(payload, dict):
            return None
        try:
            return CampaignResult.from_payload(payload)
        except (KeyError, ValueError, TypeError, AttributeError, IndexError):
            return None

    def best_snapshot(
        self, spec: CampaignSpec
    ) -> Optional[Tuple[int, CampaignResult]]:
        """Largest stored snapshot with a budget ``<= spec.n_injections``.

        Only meaningful for the ``stream`` schedule, whose draws are
        prefix-stable across budgets.
        """
        found = self._best_snapshot(spec)
        _record_lookup("snapshot", found is not None)
        return found

    def _best_snapshot(
        self, spec: CampaignSpec
    ) -> Optional[Tuple[int, CampaignResult]]:
        doc = self._read(spec)
        if doc is None:
            return None
        candidates = sorted(
            (
                int(n)
                for n in doc["snapshots"]
                if str(n).isdigit() and int(n) <= spec.n_injections
            ),
            reverse=True,
        )
        for n in candidates:
            payload = doc["snapshots"][str(n)]
            if not isinstance(payload, dict):
                continue
            try:
                return n, CampaignResult.from_payload(payload)
            except (KeyError, ValueError, TypeError, AttributeError, IndexError):
                continue
        return None

    def save_snapshot(self, spec: CampaignSpec, result: CampaignResult) -> None:
        get_telemetry().registry.counter("store.snapshot_writes").inc()
        doc = self._doc(spec)
        doc["spec"] = spec.to_dict()
        doc["snapshots"][str(result.n_injections)] = result.to_payload()
        # A partial checkpoint whose target is *at or below* the snapshot
        # just written is superseded: the snapshot already contains every
        # draw the checkpointed run was working toward, and `load_partial`
        # would otherwise re-serve the stale counters to a later run with
        # that smaller budget (double-counting its resumed buckets).
        partial = doc.get("partial")
        if (
            partial is not None
            and isinstance(partial.get("target"), int)
            and partial["target"] <= result.n_injections
        ):
            doc["partial"] = None
        self._write(spec, doc)

    # ------------------------------------------------------------ partials

    def load_partial(
        self, spec: CampaignSpec, base: int, target: int
    ) -> Optional[Tuple[Set[int], Dict]]:
        """Checkpoint of an interrupted ``base -> target`` run, if one matches.

        Returns the set of completed bucket cycles and the accumulated
        counters (``{"ff": {name: [inj, fail, lat]}, "n_forward_runs": ...,
        "total_lane_cycles": ..., "wall_seconds": ...}``).
        """
        checkpoint = self._load_partial(spec, base, target)
        _record_lookup("partial", checkpoint is not None)
        return checkpoint

    def _load_partial(
        self, spec: CampaignSpec, base: int, target: int
    ) -> Optional[Tuple[Set[int], Dict]]:
        doc = self._read(spec)
        if doc is None:
            return None
        partial = doc.get("partial")
        if not partial:
            return None
        if partial.get("base") != base or partial.get("target") != target:
            return None
        done_cycles = partial.get("done_cycles")
        accum = partial.get("accum")
        if not isinstance(done_cycles, list) or not isinstance(accum, dict):
            return None
        # Bucket cycles must be plain ints: non-hashable elements would crash
        # set(), and mistyped ones (e.g. "3") would silently miss the engine's
        # done-bucket filter and double-count resumed work.
        if not all(type(c) is int for c in done_cycles):
            return None
        if not self._valid_accum(accum):
            return None
        return set(done_cycles), accum

    @staticmethod
    def _valid_accum(accum: object) -> bool:
        """Shape-check an accumulator payload (shared by both checkpoint
        kinds).  The ff records must be [inj, fail, latency] triples of
        numbers and the engine-level metrics numeric; anything else means a
        damaged checkpoint — drop it and let the engine recompute rather
        than resume into a crash."""
        if not isinstance(accum, dict):
            return False
        ff = accum.get("ff")
        if not isinstance(ff, dict):
            return False
        for record in ff.values():
            if (
                not isinstance(record, list)
                or len(record) != 3
                or not all(isinstance(v, (int, float)) for v in record)
            ):
                return False
        for key in ("n_forward_runs", "total_lane_cycles", "wall_seconds"):
            if key in accum and not isinstance(accum[key], (int, float)):
                return False
        return True

    def save_partial(
        self,
        spec: CampaignSpec,
        base: int,
        target: int,
        done_cycles: Set[int],
        accum: Dict,
    ) -> None:
        get_telemetry().registry.counter("store.checkpoint_writes").inc()
        doc = self._doc(spec)
        doc["partial"] = {
            "base": base,
            "target": target,
            "done_cycles": sorted(done_cycles),
            "accum": accum,
        }
        self._write(spec, doc)

    def clear_partial(self, spec: CampaignSpec) -> None:
        doc = self._read(spec)
        if doc is not None and doc.get("partial") is not None:
            doc["partial"] = None
            self._write(spec, doc)

    # ---------------------------------------------------- policy snapshots

    def load_policy_snapshot(
        self, spec: CampaignSpec, signature: str
    ) -> Optional[Tuple[CampaignResult, Dict]]:
        """The stored result of an adaptive-policy run, if any.

        Policy runs realize *different* per-flip-flop injection counts than
        the flat protocol at the same nominal budget, so their snapshots are
        namespaced by :func:`repro.campaigns.policy.policy_signature` instead
        of the budget key — the family's numeric snapshots stay exactly what
        a flat run would produce.  Returns ``(result, meta)`` where *meta* is
        the policy bookkeeping stored alongside the payload (realized
        margins, injections saved, rounds).
        """
        found = self._load_policy_snapshot(spec, signature)
        _record_lookup("policy", found is not None)
        return found

    def _load_policy_snapshot(
        self, spec: CampaignSpec, signature: str
    ) -> Optional[Tuple[CampaignResult, Dict]]:
        doc = self._read(spec)
        if doc is None:
            return None
        payload = doc["snapshots"].get(f"policy:{signature}")
        if not isinstance(payload, dict):
            return None
        try:
            result = CampaignResult.from_payload(payload)
        except (KeyError, ValueError, TypeError, AttributeError, IndexError):
            return None
        meta = payload.get("policy")
        return result, dict(meta) if isinstance(meta, dict) else {}

    def save_policy_snapshot(
        self,
        spec: CampaignSpec,
        signature: str,
        result: CampaignResult,
        meta: Dict,
    ) -> None:
        get_telemetry().registry.counter("store.snapshot_writes").inc()
        doc = self._doc(spec)
        doc["spec"] = spec.to_dict()
        payload = result.to_payload()
        payload["policy"] = dict(meta)
        doc["snapshots"][f"policy:{signature}"] = payload
        # The finished snapshot supersedes any round checkpoint of the same
        # policy configuration.
        partial = doc.get("policy_partial")
        if isinstance(partial, dict) and partial.get("signature") == signature:
            doc["policy_partial"] = None
        self._write(spec, doc)

    def load_policy_partial(
        self, spec: CampaignSpec, signature: str
    ) -> Optional[Tuple[Dict[str, List[int]], Dict]]:
        """Round checkpoint of an interrupted adaptive run, if one matches.

        Returns ``(tallies, accum)``: the per-flip-flop ``[n, k, consumed]``
        draw-stream tallies (executed draws, failures, stream position) and
        the accumulated engine counters, both in the same shape the
        sequential driver checkpoints after every round.
        """
        checkpoint = self._load_policy_partial(spec, signature)
        _record_lookup("policy_partial", checkpoint is not None)
        return checkpoint

    def _load_policy_partial(
        self, spec: CampaignSpec, signature: str
    ) -> Optional[Tuple[Dict[str, List[int]], Dict]]:
        doc = self._read(spec)
        if doc is None:
            return None
        partial = doc.get("policy_partial")
        if not isinstance(partial, dict) or partial.get("signature") != signature:
            return None
        tallies = partial.get("tallies")
        accum = partial.get("accum")
        if not isinstance(tallies, dict) or not self._valid_accum(accum):
            return None
        # Tallies must be [n, k, consumed] int triples with k <= n <= consumed
        # — anything else is a damaged checkpoint that would corrupt the
        # policy's allocation arithmetic.
        for record in tallies.values():
            if (
                not isinstance(record, list)
                or len(record) != 3
                or not all(type(v) is int for v in record)
                or not 0 <= record[1] <= record[0] <= record[2]
            ):
                return None
        return (
            {name: list(record) for name, record in tallies.items()},
            accum,
        )

    def save_policy_partial(
        self,
        spec: CampaignSpec,
        signature: str,
        tallies: Dict[str, List[int]],
        accum: Dict,
    ) -> None:
        get_telemetry().registry.counter("store.checkpoint_writes").inc()
        doc = self._doc(spec)
        doc["policy_partial"] = {
            "signature": signature,
            "tallies": {name: list(record) for name, record in tallies.items()},
            "accum": accum,
        }
        self._write(spec, doc)

    # ----------------------------------------------------------- inventory

    def stored_budgets(self, spec: CampaignSpec) -> List[int]:
        doc = self._read(spec)
        if doc is None:
            return []
        return sorted(int(n) for n in doc["snapshots"] if str(n).isdigit())
