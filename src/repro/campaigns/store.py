"""Content-addressed, resumable campaign result store.

One JSON document per campaign *family* (see
:meth:`~repro.campaigns.spec.CampaignSpec.family_key`), holding

* ``snapshots`` — finished :class:`CampaignResult` payloads keyed by their
  injection budget.  A re-run of a stored budget costs zero forward
  simulations; with the ``stream`` schedule a smaller stored budget seeds an
  incremental top-up (only the delta draws are simulated);
* ``partial`` — a mid-run checkpoint (completed time-slot buckets plus the
  accumulated per-flip-flop counts) written after every shard, so an
  interrupted campaign resumes where it stopped.

Writes are atomic (temp file + ``os.replace``), so a crash mid-write never
corrupts previously stored results.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..faultinjection.campaign import CampaignResult
from .spec import CampaignSpec

__all__ = ["CampaignStore"]

STORE_VERSION = 1


class CampaignStore:
    """JSON-on-disk store keyed by campaign-spec hash."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def path_for(self, spec: CampaignSpec) -> Path:
        return self.root / f"campaign_{spec.circuit}_{spec.family_key()}.json"

    # ----------------------------------------------------------------- io

    def _read(self, spec: CampaignSpec) -> Optional[Dict]:
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if doc.get("store_version", 0) > STORE_VERSION:
            return None
        if doc.get("family") != spec.family_key():
            return None
        return doc

    def _write(self, spec: CampaignSpec, doc: Dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc))
        os.replace(tmp, path)

    def _doc(self, spec: CampaignSpec) -> Dict:
        doc = self._read(spec)
        if doc is None:
            doc = {
                "store_version": STORE_VERSION,
                "family": spec.family_key(),
                "schedule": spec.schedule,
                "spec": spec.to_dict(),
                "snapshots": {},
                "partial": None,
            }
        return doc

    # ----------------------------------------------------------- snapshots

    def load_exact(self, spec: CampaignSpec) -> Optional[CampaignResult]:
        """The stored result for exactly ``spec.n_injections``, if any."""
        doc = self._read(spec)
        if doc is None:
            return None
        payload = doc["snapshots"].get(str(spec.n_injections))
        if payload is None:
            return None
        try:
            return CampaignResult.from_payload(payload)
        except (KeyError, ValueError):
            return None

    def best_snapshot(
        self, spec: CampaignSpec
    ) -> Optional[Tuple[int, CampaignResult]]:
        """Largest stored snapshot with a budget ``<= spec.n_injections``.

        Only meaningful for the ``stream`` schedule, whose draws are
        prefix-stable across budgets.
        """
        doc = self._read(spec)
        if doc is None:
            return None
        candidates = sorted(
            (int(n) for n in doc["snapshots"] if int(n) <= spec.n_injections),
            reverse=True,
        )
        for n in candidates:
            try:
                return n, CampaignResult.from_payload(doc["snapshots"][str(n)])
            except (KeyError, ValueError):
                continue
        return None

    def save_snapshot(self, spec: CampaignSpec, result: CampaignResult) -> None:
        doc = self._doc(spec)
        doc["spec"] = spec.to_dict()
        doc["snapshots"][str(result.n_injections)] = result.to_payload()
        partial = doc.get("partial")
        if partial is not None and partial.get("target") == result.n_injections:
            doc["partial"] = None
        self._write(spec, doc)

    # ------------------------------------------------------------ partials

    def load_partial(
        self, spec: CampaignSpec, base: int, target: int
    ) -> Optional[Tuple[Set[int], Dict]]:
        """Checkpoint of an interrupted ``base -> target`` run, if one matches.

        Returns the set of completed bucket cycles and the accumulated
        counters (``{"ff": {name: [inj, fail, lat]}, "n_forward_runs": ...,
        "total_lane_cycles": ..., "wall_seconds": ...}``).
        """
        doc = self._read(spec)
        if doc is None:
            return None
        partial = doc.get("partial")
        if not partial:
            return None
        if partial.get("base") != base or partial.get("target") != target:
            return None
        return set(partial["done_cycles"]), partial["accum"]

    def save_partial(
        self,
        spec: CampaignSpec,
        base: int,
        target: int,
        done_cycles: Set[int],
        accum: Dict,
    ) -> None:
        doc = self._doc(spec)
        doc["partial"] = {
            "base": base,
            "target": target,
            "done_cycles": sorted(done_cycles),
            "accum": accum,
        }
        self._write(spec, doc)

    def clear_partial(self, spec: CampaignSpec) -> None:
        doc = self._read(spec)
        if doc is not None and doc.get("partial") is not None:
            doc["partial"] = None
            self._write(spec, doc)

    # ----------------------------------------------------------- inventory

    def stored_budgets(self, spec: CampaignSpec) -> List[int]:
        doc = self._read(spec)
        if doc is None:
            return []
        return sorted(int(n) for n in doc["snapshots"])
