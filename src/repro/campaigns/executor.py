"""The campaign engine: sharded execution, merging, caching, resume.

:class:`CampaignEngine` turns a :class:`~repro.campaigns.spec.CampaignSpec`
into a :class:`~repro.faultinjection.campaign.CampaignResult`:

1. consult the :class:`~repro.campaigns.store.CampaignStore` (if a cache
   directory is configured) — an exact snapshot hit costs zero forward
   simulations, and with the ``stream`` schedule a smaller snapshot seeds an
   incremental top-up;
2. plan the remaining injection draws as time-slot buckets and partition
   them into balanced shards;
3. run the shards — in worker processes (``jobs > 1``), each of which
   rebuilds its own netlist/golden trace/:class:`FaultInjector` from the
   picklable spec, or serially in-process as a fallback;
4. merge the per-flip-flop counters (pure integer sums, so the merged
   result is bit-identical to a serial run of the same schedule) and
   checkpoint progress to the store after every shard.

``KeyboardInterrupt`` (or any other error) mid-campaign leaves a valid
checkpoint behind; the next run with the same spec resumes from it.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..faultinjection.campaign import CampaignResult, FlipFlopResult
from ..faultinjection.injector import FaultInjector
from ..faultinjection.scheduler import AdaptiveScheduler
from ..obs import (
    MetricsSnapshot,
    ProgressThrottle,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from .partition import Bucket, legacy_buckets, partition_shards, stream_buckets
from .spec import CampaignContext, CampaignSpec, build_context
from .store import CampaignStore

__all__ = ["CampaignEngine", "EngineReport", "run_campaign"]

#: Shards per worker process: more shards than workers smooths load balance
#: and tightens checkpoint granularity without measurable overhead.
SHARDS_PER_JOB = 4


@dataclass
class EngineReport:
    """What one :meth:`CampaignEngine.run` actually did (vs. reused)."""

    jobs: int = 1
    cache_hit: bool = False
    base_injections: int = 0
    resumed_buckets: int = 0
    executed_buckets: int = 0
    executed_lanes: int = 0
    executed_forward_runs: int = 0
    n_shards: int = 0
    wall_seconds: float = 0.0


@dataclass
class _Accumulator:
    """Mergeable per-flip-flop counters plus engine-level metrics."""

    ff: Dict[str, List[int]] = field(default_factory=dict)
    n_forward_runs: int = 0
    total_lane_cycles: int = 0
    wall_seconds: float = 0.0

    def merge_shard(self, payload: Dict) -> None:
        for name, (inj, fail, lat) in payload["ff"].items():
            rec = self.ff.setdefault(name, [0, 0, 0])
            rec[0] += inj
            rec[1] += fail
            rec[2] += lat
        self.n_forward_runs += payload["n_forward_runs"]
        self.total_lane_cycles += payload["total_lane_cycles"]

    def to_payload(self) -> Dict:
        return {
            "ff": self.ff,
            "n_forward_runs": self.n_forward_runs,
            "total_lane_cycles": self.total_lane_cycles,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "_Accumulator":
        acc = cls(
            n_forward_runs=payload.get("n_forward_runs", 0),
            total_lane_cycles=payload.get("total_lane_cycles", 0),
            wall_seconds=payload.get("wall_seconds", 0.0),
        )
        acc.ff = {name: list(rec) for name, rec in payload.get("ff", {}).items()}
        return acc


class _ShardRunner:
    """Executes buckets against one injector (one per process).

    With the default ``adaptive`` scheduler a shard's buckets all feed one
    long-lived :class:`~repro.faultinjection.scheduler.AdaptiveScheduler`,
    so lanes freed by early retirement are refilled with the shard's later
    injections instead of draining per-bucket batches.  ``scheduler="batch"``
    keeps the original one-forward-run-per-time-slot execution.  Per-lane
    verdicts are identical either way, so shard merges stay bit-exact.
    """

    def __init__(self, spec: CampaignSpec, context: CampaignContext) -> None:
        self.spec = spec
        golden = context.ensure_golden()
        self.injector = FaultInjector(
            context.netlist,
            context.workload.testbench,
            golden,
            context.criterion,
            check_interval=spec.check_interval,
            backend=spec.backend,
        )
        self.scheduler: Optional[AdaptiveScheduler] = None
        if spec.scheduler == "adaptive":
            # max_lanes=None: backend-tuned wide passes (spec.max_lanes is
            # the *batch* chunk width; refill keeps wider passes saturated).
            self.scheduler = AdaptiveScheduler(self.injector, max_lanes=None)

    @classmethod
    def from_spec(cls, spec: CampaignSpec) -> "_ShardRunner":
        return cls(spec, build_context(spec))

    def run_shard(self, buckets: Sequence[Tuple[int, Sequence[str]]]) -> Dict:
        """Simulate a shard's buckets; return mergeable counters.

        The payload also carries the shard's wall time (feeds the engine's
        worker-utilization gauge) and, per backend, a lane-cycles/sec gauge
        observation in the *current* telemetry registry — which is the
        worker's own throwaway registry when running in a pool process, and
        the engine's when running serially.
        """
        start = time.perf_counter()
        payload = (
            self._run_shard_scheduled(buckets)
            if self.scheduler is not None
            else self._run_shard_batches(buckets)
        )
        wall = time.perf_counter() - start
        payload["wall_seconds"] = wall
        registry = get_telemetry().registry
        registry.timer("executor.shard_seconds").observe(wall)
        if wall > 0:
            registry.gauge(f"sim.{self.spec.backend}.lane_cycles_per_sec").set(
                payload["total_lane_cycles"] / wall
            )
        return payload

    def _run_shard_batches(self, buckets: Sequence[Tuple[int, Sequence[str]]]) -> Dict:
        spec = self.spec
        injector = self.injector
        ff: Dict[str, List[int]] = {}
        n_runs = 0
        lane_cycles = 0
        for cycle, lanes in buckets:
            indices = [injector.ff_index(name) for name in lanes]
            for start in range(0, len(indices), spec.max_lanes):
                chunk = indices[start : start + spec.max_lanes]
                names = lanes[start : start + spec.max_lanes]
                outcome = injector.run_batch(cycle, chunk, horizon=spec.horizon)
                n_runs += 1
                lane_cycles += outcome.cycles_simulated * len(chunk)
                for lane, name in enumerate(names):
                    rec = ff.setdefault(name, [0, 0, 0])
                    rec[0] += 1
                    if (outcome.failed_mask >> lane) & 1:
                        rec[1] += 1
                        rec[2] += outcome.latencies.get(lane, 0)
        return {
            "ff": ff,
            "n_forward_runs": n_runs,
            "total_lane_cycles": lane_cycles,
            "done_cycles": [cycle for cycle, _ in buckets],
        }

    def _run_shard_scheduled(self, buckets: Sequence[Tuple[int, Sequence[str]]]) -> Dict:
        injector = self.injector
        requests: List[Tuple[int, int]] = []
        names: List[str] = []
        for cycle, lanes in buckets:
            for name in lanes:
                requests.append((cycle, injector.ff_index(name)))
                names.append(name)
        outcome = self.scheduler.run(requests, horizon=self.spec.horizon)
        ff: Dict[str, List[int]] = {}
        for name, (failed, latency) in zip(names, outcome.verdicts):
            rec = ff.setdefault(name, [0, 0, 0])
            rec[0] += 1
            if failed:
                rec[1] += 1
                rec[2] += latency
        return {
            "ff": ff,
            "n_forward_runs": outcome.stats.n_passes,
            "total_lane_cycles": outcome.stats.lane_cycles,
            "done_cycles": [cycle for cycle, _ in buckets],
        }


# --------------------------------------------------- worker process hooks

_WORKER: Optional[_ShardRunner] = None


def _worker_init(spec_payload: Dict) -> None:
    global _WORKER
    # Forked workers inherit the parent's telemetry — including any open
    # sink file handles — so replace it before building anything, or every
    # worker's synthesize/golden spans would interleave into the parent's
    # stream.
    set_telemetry(Telemetry())
    _WORKER = _ShardRunner.from_spec(CampaignSpec.from_dict(spec_payload))


def _worker_run_shard(shard: List[Tuple[int, Tuple[str, ...]]]) -> Dict:
    assert _WORKER is not None, "worker used before initialization"
    # Fresh per-shard telemetry: the shard's metrics travel back inside the
    # payload as a mergeable snapshot (the executor absorbs them), instead
    # of accumulating invisibly in the worker process.
    with use_telemetry(Telemetry()) as telemetry:
        payload = _WORKER.run_shard(shard)
        payload["metrics"] = telemetry.registry.snapshot().to_payload()
    return payload


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class CampaignEngine:
    """Parallel, cached, resumable campaign execution.

    Parameters
    ----------
    spec:
        Self-contained campaign description.
    jobs:
        Worker processes; ``1`` (default) runs everything in-process.
    cache_dir:
        Root of the result store (``<cache_dir>/campaigns/``).  ``None``
        disables persistence (no snapshots, no resume).
    context:
        Optional pre-built environment for the calling process, e.g. when
        the caller needs the same netlist/golden trace for feature
        extraction.  Workers always rebuild their own from the spec.
    progress:
        ``progress(done_shards, total_shards)`` callback.  Throttled to at
        most one call per *progress_interval* seconds (plus, always, the
        final ``(total, total)`` call); the same throttle drives the
        telemetry ``progress`` events the live sink renders.
    progress_interval:
        Minimum seconds between forwarded progress notifications
        (default 0.1); ``0`` restores the historical call-per-shard
        behavior.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        context: Optional[CampaignContext] = None,
        shards_per_job: int = SHARDS_PER_JOB,
        progress: Optional[Callable[[int, int], None]] = None,
        progress_interval: float = 0.1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec = spec
        self.jobs = jobs
        self.store = (
            CampaignStore(Path(cache_dir) / "campaigns") if cache_dir is not None else None
        )
        if context is not None:
            self._validate_context(context)
        self._context = context
        self._run_start = time.monotonic()
        self.shards_per_job = max(1, shards_per_job)
        self.progress = progress
        self.progress_interval = progress_interval
        self._busy_seconds = 0.0
        self.last_report = EngineReport()

    def _validate_context(self, context: CampaignContext) -> None:
        """Guard the invariants a caller-supplied context must share with the
        spec: workers (jobs > 1) and the result store trust the spec alone,
        so a divergent context would silently poison both."""
        from ..faultinjection.classify import AnyOutputCriterion, PacketInterfaceCriterion

        if context.netlist.name != self.spec.circuit:
            raise ValueError(
                f"context netlist {context.netlist.name!r} does not match "
                f"spec circuit {self.spec.circuit!r}"
            )
        expected = (
            PacketInterfaceCriterion if self.spec.criterion == "packet" else AnyOutputCriterion
        )
        if not isinstance(context.criterion, expected):
            raise ValueError(
                f"context criterion {type(context.criterion).__name__} does not "
                f"match spec criterion {self.spec.criterion!r}"
            )

    @property
    def context(self) -> CampaignContext:
        if self._context is None:
            self._context = build_context(self.spec)
        return self._context

    # ----------------------------------------------------------------- run

    def run(self, resume: bool = True) -> CampaignResult:
        """Execute (or load, or top up) the campaign described by the spec."""
        spec = self.spec
        with get_telemetry().tracer.span(
            "campaign",
            circuit=spec.circuit,
            n_injections=spec.n_injections,
            backend=spec.backend,
            scheduler=spec.scheduler,
            schedule=spec.schedule,
            jobs=self.jobs,
        ):
            return self._run(resume)

    def _run(self, resume: bool) -> CampaignResult:
        start_time = self._run_start = time.monotonic()
        spec = self.spec
        report = EngineReport(jobs=self.jobs)
        self.last_report = report

        if self.store is not None:
            exact = self.store.load_exact(spec)
            if exact is not None:
                report.cache_hit = True
                report.base_injections = spec.n_injections
                report.wall_seconds = time.monotonic() - start_time
                return exact

        base: Optional[CampaignResult] = None
        base_n = 0
        if self.store is not None and spec.schedule == "stream":
            found = self.store.best_snapshot(spec)
            if found is not None:
                base_n, base = found
                get_telemetry().registry.counter("store.topups").inc()
        report.base_injections = base_n

        context = self.context
        window = context.window_cycles()
        ff_names = context.ff_names(spec)
        if spec.schedule == "legacy":
            buckets = legacy_buckets(spec, window, ff_names)
        else:
            buckets = stream_buckets(
                spec, window, ff_names, start=base_n, stop=spec.n_injections
            )

        accum = _Accumulator()
        done_cycles: Set[int] = set()
        if self.store is not None and resume:
            checkpoint = self.store.load_partial(spec, base_n, spec.n_injections)
            if checkpoint is not None:
                done_cycles, accum_payload = checkpoint
                accum = _Accumulator.from_payload(accum_payload)
                report.resumed_buckets = len(done_cycles)
        pending = [b for b in buckets if b.cycle not in done_cycles]

        n_shards = min(len(pending), max(1, self.jobs * self.shards_per_job))
        shards = partition_shards(pending, n_shards) if pending else []
        report.n_shards = len(shards)

        try:
            if self.jobs > 1 and len(shards) > 1:
                self._run_parallel(shards, accum, done_cycles, report)
            else:
                self._run_serial(shards, accum, done_cycles, report)
        except BaseException:
            self._checkpoint(base_n, done_cycles, accum)
            raise

        result = self._assemble(ff_names, base, accum)
        # accum.wall_seconds carries time spent by interrupted predecessors
        # (restored from the checkpoint); base carries prior snapshots'.
        result.wall_seconds = (
            (base.wall_seconds if base else 0.0)
            + accum.wall_seconds
            + (time.monotonic() - start_time)
        )
        if self.store is not None:
            self.store.save_snapshot(spec, result)
        report.wall_seconds = time.monotonic() - start_time
        self._record_run_metrics(report)
        return result

    def _record_run_metrics(self, report: EngineReport) -> None:
        """End-of-run rollups: throughput and worker utilization."""
        registry = get_telemetry().registry
        if report.wall_seconds > 0 and report.executed_lanes:
            registry.gauge("campaign.injections_per_sec").set(
                report.executed_lanes / report.wall_seconds
            )
        if report.wall_seconds > 0 and self._busy_seconds > 0:
            registry.gauge("campaign.worker_utilization").set(
                min(1.0, self._busy_seconds / (self.jobs * report.wall_seconds))
            )

    # ------------------------------------------------------------ execution

    def _consume(
        self,
        shard_payloads: Iterable[Dict],
        total: int,
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
        base_n: int,
    ) -> None:
        telemetry = get_telemetry()
        registry = telemetry.registry
        start = time.monotonic()

        def notify(done_shards: int, total_shards: int) -> None:
            elapsed = time.monotonic() - start
            rate = report.executed_lanes / elapsed if elapsed > 0 else 0.0
            if rate > 0:
                registry.gauge("campaign.injections_per_sec").set(rate)
            if telemetry.active:
                remaining = total_shards - done_shards
                telemetry.emit(
                    {
                        "event": "progress",
                        "scope": "campaign",
                        "unit": "shards",
                        "done": done_shards,
                        "total": total_shards,
                        "injections": report.executed_lanes,
                        "injections_per_sec": rate,
                        "eta_seconds": (
                            remaining * elapsed / done_shards if done_shards else None
                        ),
                    }
                )
            if self.progress is not None:
                self.progress(done_shards, total_shards)

        throttled = ProgressThrottle(notify, min_interval=self.progress_interval)
        done = 0
        for payload in shard_payloads:
            accum.merge_shard(payload)
            done_cycles.update(payload["done_cycles"])
            report.executed_buckets += len(payload["done_cycles"])
            report.executed_forward_runs += payload["n_forward_runs"]
            shard_lanes = sum(rec[0] for rec in payload["ff"].values())
            report.executed_lanes += shard_lanes
            self._busy_seconds += payload.get("wall_seconds", 0.0)
            metrics = payload.get("metrics")
            if metrics:  # worker shard: absorb its snapshot into our registry
                registry.absorb(MetricsSnapshot.from_payload(metrics))
            registry.counter("campaign.shard_merges").inc()
            registry.counter("campaign.injections").inc(shard_lanes)
            done += 1
            if done < total:  # final state is persisted as a snapshot instead
                self._checkpoint(base_n, done_cycles, accum)
            throttled(done, total)

    def _run_serial(
        self,
        shards: List[List[Bucket]],
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
    ) -> None:
        if not shards:
            return
        runner = _ShardRunner(self.spec, self.context)
        payloads = (
            runner.run_shard([(b.cycle, b.lanes) for b in shard]) for shard in shards
        )
        self._consume(
            payloads, len(shards), accum, done_cycles, report, report.base_injections
        )

    def _run_parallel(
        self,
        shards: List[List[Bucket]],
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
    ) -> None:
        ctx = _mp_context()
        tasks = [[(b.cycle, b.lanes) for b in shard] for shard in shards]
        with ctx.Pool(
            processes=min(self.jobs, len(shards)),
            initializer=_worker_init,
            initargs=(self.spec.to_dict(),),
        ) as pool:
            self._consume(
                pool.imap_unordered(_worker_run_shard, tasks),
                len(shards),
                accum,
                done_cycles,
                report,
                report.base_injections,
            )

    # ------------------------------------------------------------- plumbing

    def _checkpoint(
        self, base_n: int, done_cycles: Set[int], accum: _Accumulator
    ) -> None:
        if self.store is not None and done_cycles:
            payload = accum.to_payload()
            payload["wall_seconds"] = accum.wall_seconds + (
                time.monotonic() - self._run_start
            )
            self.store.save_partial(
                self.spec, base_n, self.spec.n_injections, done_cycles, payload
            )

    def _assemble(
        self,
        ff_names: Sequence[str],
        base: Optional[CampaignResult],
        accum: _Accumulator,
    ) -> CampaignResult:
        spec = self.spec
        result = CampaignResult(
            circuit=spec.circuit, n_injections=spec.n_injections, seed=spec.seed
        )
        for name in ff_names:
            record = FlipFlopResult(name)
            if base is not None and name in base.results:
                prior = base.results[name]
                record.n_injections += prior.n_injections
                record.n_failures += prior.n_failures
                record.latency_sum += prior.latency_sum
            delta = accum.ff.get(name)
            if delta is not None:
                record.n_injections += delta[0]
                record.n_failures += delta[1]
                record.latency_sum += delta[2]
            result.results[name] = record
        result.n_forward_runs = (base.n_forward_runs if base else 0) + accum.n_forward_runs
        result.total_lane_cycles = (
            base.total_lane_cycles if base else 0
        ) + accum.total_lane_cycles
        return result


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    resume: bool = True,
    context: Optional[CampaignContext] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    progress_interval: float = 0.1,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        spec,
        jobs=jobs,
        cache_dir=cache_dir,
        context=context,
        progress=progress,
        progress_interval=progress_interval,
    )
    return engine.run(resume=resume)
