"""The campaign engine: sharded execution, merging, caching, resume.

:class:`CampaignEngine` turns a :class:`~repro.campaigns.spec.CampaignSpec`
into a :class:`~repro.faultinjection.campaign.CampaignResult`:

1. consult the :class:`~repro.campaigns.store.CampaignStore` (if a cache
   directory is configured) — an exact snapshot hit costs zero forward
   simulations, and with the ``stream`` schedule a smaller snapshot seeds an
   incremental top-up;
2. plan the remaining injection draws as time-slot buckets and partition
   them into balanced shards;
3. run the shards through a :class:`~repro.campaigns.supervisor.SupervisedPool`
   — worker processes (``jobs > 1``), each of which rebuilds its own
   netlist/golden trace/:class:`FaultInjector` from the picklable spec, or
   the in-process serial runner.  The supervisor retries failed/hung/lost
   shards with backoff, rebuilds broken pools, quarantines shards that
   keep failing (reported in :attr:`EngineReport.quarantined_shards`
   instead of raising), and degrades to serial execution when the pool
   itself is unreliable;
4. merge the per-flip-flop counters (pure integer sums, so the merged
   result is bit-identical to a serial run of the same schedule) and
   checkpoint progress to the store on a throttled interval (with an exact
   write at every exit path).

``KeyboardInterrupt`` (or any other error) mid-campaign leaves a valid
checkpoint behind; the next run with the same spec resumes from it.  A
campaign that completed *with* quarantined shards is persisted as a
partial, never as a snapshot, so a rerun retries only the missing work.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..faultinjection.campaign import CampaignResult, FlipFlopResult
from ..faultinjection.injector import FaultInjector
from ..faultinjection.scheduler import AdaptiveScheduler
from ..obs import (
    MetricsSnapshot,
    ProgressThrottle,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from . import warmstart
from .partition import (
    Bucket,
    legacy_buckets,
    partition_shards,
    stream_buckets,
    stream_buckets_ranged,
)
from .policy import ShardGate, make_policy, policy_signature, realized_margins
from .spec import CampaignContext, CampaignSpec, build_context
from .store import CampaignStore
from .supervisor import RetryPolicy, ShardOutcome, SupervisedPool

__all__ = ["CampaignEngine", "EngineReport", "RetryPolicy", "run_campaign"]

#: Shards per worker process: more shards than workers smooths load balance
#: and tightens checkpoint granularity without measurable overhead.
SHARDS_PER_JOB = 4

#: Minimum seconds between mid-run partial-checkpoint writes.  Checkpoints
#: are full-payload JSON documents; writing one per shard made store I/O
#: scale O(shards) with campaign size.  Exits (exception, quarantine) always
#: write exactly, so at most one throttle-interval of work is ever at risk.
CHECKPOINT_INTERVAL = 5.0


@dataclass
class EngineReport:
    """What one :meth:`CampaignEngine.run` actually did (vs. reused)."""

    jobs: int = 1
    cache_hit: bool = False
    base_injections: int = 0
    resumed_buckets: int = 0
    executed_buckets: int = 0
    executed_lanes: int = 0
    executed_forward_runs: int = 0
    n_shards: int = 0
    wall_seconds: float = 0.0
    #: Sequential-policy rounds driven (0 for the flat single-round path).
    rounds: int = 0
    #: Injections the sampling policy avoided vs. the flat protocol's
    #: ``nominal × n_ffs`` total (0 for flat).
    injections_saved: int = 0
    #: Shard re-executions the supervisor performed (failures, timeouts,
    #: worker losses — every dispatch beyond a shard's first).
    retries: int = 0
    #: Worker-pool teardown/rebuild cycles (hung or dead workers).
    pool_rebuilds: int = 0
    #: Whether the supervisor gave up on the pool and finished serially.
    degraded_serial: bool = False
    #: Shards abandoned after exhausting their retry budget.  Non-empty
    #: means the result is incomplete (and was persisted as a partial, not
    #: a snapshot); each entry is a ``QuarantinedShard.to_dict()``.
    quarantined_shards: List[Dict] = field(default_factory=list)
    #: Seconds spent building warm-cache entries (context, golden trace,
    #: shard runner) that were not already resident in this process.
    warmup_seconds: float = 0.0
    #: Warm-cache runner lookups that found a resident runner / had to
    #: build one (see :mod:`repro.campaigns.warmstart`).
    warm_hits: int = 0
    warm_misses: int = 0
    #: Pool rebuilds whose replacement workers re-forked from the parent's
    #: warm cache instead of re-deriving the execution environment.
    warm_rebuild_reuses: int = 0


@dataclass
class _Accumulator:
    """Mergeable per-flip-flop counters plus engine-level metrics."""

    ff: Dict[str, List[int]] = field(default_factory=dict)
    n_forward_runs: int = 0
    total_lane_cycles: int = 0
    wall_seconds: float = 0.0

    def merge_shard(self, payload: Dict) -> None:
        for name, (inj, fail, lat) in payload["ff"].items():
            rec = self.ff.setdefault(name, [0, 0, 0])
            rec[0] += inj
            rec[1] += fail
            rec[2] += lat
        self.n_forward_runs += payload["n_forward_runs"]
        self.total_lane_cycles += payload["total_lane_cycles"]

    def to_payload(self) -> Dict:
        return {
            "ff": self.ff,
            "n_forward_runs": self.n_forward_runs,
            "total_lane_cycles": self.total_lane_cycles,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "_Accumulator":
        acc = cls(
            n_forward_runs=payload.get("n_forward_runs", 0),
            total_lane_cycles=payload.get("total_lane_cycles", 0),
            wall_seconds=payload.get("wall_seconds", 0.0),
        )
        acc.ff = {name: list(rec) for name, rec in payload.get("ff", {}).items()}
        return acc


def _shard_payload_error(payload: object) -> Optional[str]:
    """Shape-check one shard payload before it is merged.

    The supervisor applies this to every worker return value: a payload
    that fails (wrong type, non-integer counters, missing keys — e.g. a
    torn pickle or a chaos-malformed result) counts as a failed attempt
    and is retried/quarantined instead of corrupting the merged counters.
    """
    if not isinstance(payload, dict):
        return f"expected dict payload, got {type(payload).__name__}"
    ff = payload.get("ff")
    if not isinstance(ff, dict):
        return "missing or invalid 'ff' counter map"
    if isinstance(ff.get("idx"), bytes):
        # Packed tally transport (see warmstart.pack_tallies).
        packed_error = warmstart.validate_packed_tally(ff)
        if packed_error is not None:
            return packed_error
    else:
        for name, rec in ff.items():
            if (
                not isinstance(name, str)
                or not isinstance(rec, (list, tuple))
                or len(rec) != 3
                or not all(isinstance(v, int) for v in rec)
            ):
                return f"malformed counter record for {name!r}"
    for key in ("n_forward_runs", "total_lane_cycles"):
        if not isinstance(payload.get(key), int):
            return f"missing or invalid {key!r}"
    cycles = payload.get("done_cycles")
    if not isinstance(cycles, list) or not all(isinstance(c, int) for c in cycles):
        return "missing or invalid 'done_cycles'"
    skipped = payload.get("skipped", {})
    if not isinstance(skipped, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in skipped.items()
    ):
        return "missing or invalid 'skipped'"
    return None


class _ShardRunner:
    """Executes buckets against one injector (one per process).

    With the default ``adaptive`` scheduler a shard's buckets all feed one
    long-lived :class:`~repro.faultinjection.scheduler.AdaptiveScheduler`,
    so lanes freed by early retirement are refilled with the shard's later
    injections instead of draining per-bucket batches.  ``scheduler="batch"``
    keeps the original one-forward-run-per-time-slot execution.  Per-lane
    verdicts are identical either way, so shard merges stay bit-exact.
    """

    def __init__(self, spec: CampaignSpec, context: CampaignContext) -> None:
        self.spec = spec
        golden = context.ensure_golden()
        self.injector = FaultInjector(
            context.netlist,
            context.workload.testbench,
            golden,
            context.criterion,
            check_interval=spec.check_interval,
            backend=spec.backend,
            fault_model=spec.fault_model,
        )
        self.scheduler: Optional[AdaptiveScheduler] = None
        if spec.scheduler == "adaptive":
            # max_lanes=None: backend-tuned wide passes (spec.max_lanes is
            # the *batch* chunk width; refill keeps wider passes saturated).
            self.scheduler = AdaptiveScheduler(self.injector, max_lanes=None)

    @classmethod
    def from_spec(cls, spec: CampaignSpec) -> "_ShardRunner":
        return cls(spec, build_context(spec))

    def run_shard(
        self,
        buckets: Sequence[Tuple[int, Sequence[str]]],
        gate: Optional[ShardGate] = None,
        attempt: int = 1,
    ) -> Dict:
        """Simulate a shard's buckets; return mergeable counters.

        *gate*, when given, is the sampling policy's online decision point:
        every injection is offered to ``gate.admit`` before it costs a lane,
        and verdicts are reported back so in-shard tallies tighten as lanes
        retire.  Skipped draws are returned in the payload's ``"skipped"``
        map — they consumed their draw-stream indices without executing.

        *attempt* is the supervisor's 1-based dispatch ordinal for this
        shard.  Simulation is attempt-independent (retries must stay
        bit-identical); only the chaos wrapper reads it, to make fault
        decisions deterministic per (shard, attempt).

        The payload also carries the shard's wall time (feeds the engine's
        worker-utilization gauge) and, per backend, a lane-cycles/sec gauge
        observation in the *current* telemetry registry — which is the
        worker's own throwaway registry when running in a pool process, and
        the engine's when running serially.
        """
        del attempt  # real simulation never varies across retries
        start = time.perf_counter()
        payload = (
            self._run_shard_scheduled(buckets, gate)
            if self.scheduler is not None
            else self._run_shard_batches(buckets, gate)
        )
        wall = time.perf_counter() - start
        payload["wall_seconds"] = wall
        # Dense index/counts transport instead of a name-keyed dict: on wide
        # circuits the flip-flop name strings dominate the result pickle.
        # The engine rehydrates against the netlist's canonical order.
        payload["ff"] = warmstart.pack_tallies(payload["ff"], self.injector.ff_index)
        registry = get_telemetry().registry
        registry.timer("executor.shard_seconds").observe(wall)
        if wall > 0:
            registry.gauge(f"sim.{self.spec.backend}.lane_cycles_per_sec").set(
                payload["total_lane_cycles"] / wall
            )
        return payload

    def _run_shard_batches(
        self,
        buckets: Sequence[Tuple[int, Sequence[str]]],
        gate: Optional[ShardGate] = None,
    ) -> Dict:
        spec = self.spec
        injector = self.injector
        ff: Dict[str, List[int]] = {}
        n_runs = 0
        lane_cycles = 0
        for cycle, lanes in buckets:
            if gate is not None:
                lanes = tuple(name for name in lanes if gate.admit(name))
                if not lanes:
                    continue
            indices = [injector.ff_index(name) for name in lanes]
            for start in range(0, len(indices), spec.max_lanes):
                chunk = indices[start : start + spec.max_lanes]
                names = lanes[start : start + spec.max_lanes]
                outcome = injector.run_batch(cycle, chunk, horizon=spec.horizon)
                n_runs += 1
                lane_cycles += outcome.cycles_simulated * len(chunk)
                for lane, name in enumerate(names):
                    failed = bool((outcome.failed_mask >> lane) & 1)
                    if gate is not None:
                        gate.record(name, failed)
                    rec = ff.setdefault(name, [0, 0, 0])
                    rec[0] += 1
                    if failed:
                        rec[1] += 1
                        rec[2] += outcome.latencies.get(lane, 0)
        return {
            "ff": ff,
            "n_forward_runs": n_runs,
            "total_lane_cycles": lane_cycles,
            "done_cycles": [cycle for cycle, _ in buckets],
            "skipped": dict(gate.skipped) if gate is not None else {},
        }

    def _run_shard_scheduled(
        self,
        buckets: Sequence[Tuple[int, Sequence[str]]],
        gate: Optional[ShardGate] = None,
    ) -> Dict:
        injector = self.injector
        requests: List[Tuple[int, int]] = []
        names: List[str] = []
        for cycle, lanes in buckets:
            for name in lanes:
                requests.append((cycle, injector.ff_index(name)))
                names.append(name)
        admit = on_verdict = None
        if gate is not None:
            admit = lambda req: gate.admit(names[req.key])  # noqa: E731
            on_verdict = lambda req, failed: gate.record(  # noqa: E731
                names[req.key], failed
            )
        outcome = self.scheduler.run(
            requests, horizon=self.spec.horizon, admit=admit, on_verdict=on_verdict
        )
        skipped_keys = frozenset(outcome.skipped)
        ff: Dict[str, List[int]] = {}
        skipped: Dict[str, int] = {}
        for key, (name, (failed, latency)) in enumerate(zip(names, outcome.verdicts)):
            if key in skipped_keys:
                skipped[name] = skipped.get(name, 0) + 1
                continue
            rec = ff.setdefault(name, [0, 0, 0])
            rec[0] += 1
            if failed:
                rec[1] += 1
                rec[2] += latency
        return {
            "ff": ff,
            "n_forward_runs": outcome.stats.n_passes,
            "total_lane_cycles": outcome.stats.lane_cycles,
            "done_cycles": [cycle for cycle, _ in buckets],
            "skipped": skipped,
        }


# --------------------------------------------------- worker process hooks

_WORKER = None
#: The spec this worker was initialized for.  Distinct from ``_WORKER.spec``:
#: a warm-cache runner is shared by every spec of its campaign family, so its
#: ``.spec`` may differ in the family-excluded fields (``n_injections``,
#: ``policy``, ``target_margin``) — anything policy-shaped must derive from
#: the init-time spec, not the runner's.
_WORKER_SPEC: Optional[CampaignSpec] = None


def _worker_init(spec_payload: Dict, chaos_payload: Optional[Dict] = None) -> None:
    global _WORKER, _WORKER_SPEC
    # Forked workers inherit the parent's telemetry — including any open
    # sink file handles — so replace it before building anything, or every
    # worker's synthesize/golden spans would interleave into the parent's
    # stream.
    set_telemetry(Telemetry())
    spec = _WORKER_SPEC = CampaignSpec.from_dict(spec_payload)
    # Fork-start workers inherit the parent's warm cache: resolve the
    # resident runner (netlist, golden trace, compiled kernels already
    # built) instead of re-deriving everything from the spec.  Spawn-start
    # platforms and standalone workers miss and cold-build as before.
    runner = warmstart.resolve_runner(spec)
    if runner is None:
        runner = _ShardRunner.from_spec(spec)
    if chaos_payload is not None:
        # Imported lazily: verify depends on campaigns, not the reverse.
        from ..verify.chaos import ChaosShardRunner, ChaosSpec

        runner = ChaosShardRunner(
            runner, ChaosSpec.from_dict(chaos_payload), in_worker=True
        )
    _WORKER = runner


def _worker_run_shard(task: Tuple[int, List[Tuple[int, Tuple[str, ...]]]]) -> Dict:
    """Pool entry point for one flat-path shard.

    *task* is ``(attempt, shard)`` — the supervisor threads the 1-based
    attempt ordinal through so the chaos wrapper (when installed) makes
    deterministic per-attempt fault decisions.
    """
    attempt, shard = task
    assert _WORKER is not None, "worker used before initialization"
    # Fresh per-shard telemetry: the shard's metrics travel back inside the
    # payload as a mergeable snapshot (the executor absorbs them), instead
    # of accumulating invisibly in the worker process.
    with use_telemetry(Telemetry()) as telemetry:
        payload = _WORKER.run_shard(shard, attempt=attempt)
        payload["metrics"] = telemetry.registry.snapshot().to_payload()
    return payload


def _worker_run_shard_gated(
    task: Tuple[int, Tuple[List[Tuple[int, Tuple[str, ...]]], Dict[str, List[int]]]]
) -> Dict:
    """Pool entry point for one sequential-policy shard.

    *task* is ``(attempt, (shard, tallies))`` — the shard's buckets plus a
    snapshot of the campaign-wide ``[n, k, consumed]`` tallies at the round
    boundary.  The worker rebuilds the policy from its init-time spec (not
    the runner's — a warm runner may carry a family sibling's) and gates the
    shard with a :class:`~repro.campaigns.policy.ShardGate`, so flip-flops
    whose interval collapses mid-shard stop consuming lanes immediately.
    ``ShardGate`` copies the tallies, so retried attempts re-gate from the
    same round-boundary state and stay deterministic.
    """
    attempt, (shard, tallies) = task
    assert _WORKER is not None, "worker used before initialization"
    gate = ShardGate(make_policy(_WORKER_SPEC), tallies)
    with use_telemetry(Telemetry()) as telemetry:
        payload = _WORKER.run_shard(shard, gate=gate, attempt=attempt)
        payload["metrics"] = telemetry.registry.snapshot().to_payload()
    return payload


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class CampaignEngine:
    """Parallel, cached, resumable, fault-tolerant campaign execution.

    Parameters
    ----------
    spec:
        Self-contained campaign description.
    jobs:
        Worker processes; ``1`` (default) runs everything in-process.
    cache_dir:
        Root of the result store (``<cache_dir>/campaigns/``).  ``None``
        disables persistence (no snapshots, no resume).
    context:
        Optional pre-built environment for the calling process, e.g. when
        the caller needs the same netlist/golden trace for feature
        extraction.  Workers always rebuild their own from the spec.
    progress:
        ``progress(done_shards, total_shards)`` callback.  Throttled to at
        most one call per *progress_interval* seconds (plus, always, the
        final ``(total, total)`` call); the same throttle drives the
        telemetry ``progress`` events the live sink renders.
    progress_interval:
        Minimum seconds between forwarded progress notifications
        (default 0.1); ``0`` restores the historical call-per-shard
        behavior.
    retry:
        :class:`~repro.campaigns.supervisor.RetryPolicy` governing shard
        deadlines, retry budget, backoff, and pool-rebuild limits.
        Defaults to ``RetryPolicy()`` (3 attempts, no deadline).
    chaos:
        Optional :class:`~repro.verify.chaos.ChaosSpec`.  When set, every
        shard runner (worker and serial) is wrapped in a
        :class:`~repro.verify.chaos.ChaosShardRunner` that injects
        deterministic faults — the self-test hook for the supervisor.
    checkpoint_interval:
        Minimum seconds between mid-run partial-checkpoint writes
        (default :data:`CHECKPOINT_INTERVAL`); ``0`` restores the
        historical write-per-shard behavior.  Exits always write exactly.
    store:
        Pre-built :class:`CampaignStore` (overrides *cache_dir*); the
        chaos harness uses this to inject torn-write faults at the store
        boundary.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        context: Optional[CampaignContext] = None,
        shards_per_job: int = SHARDS_PER_JOB,
        progress: Optional[Callable[[int, int], None]] = None,
        progress_interval: float = 0.1,
        retry: Optional[RetryPolicy] = None,
        chaos=None,
        checkpoint_interval: float = CHECKPOINT_INTERVAL,
        store: Optional[CampaignStore] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec = spec
        self.jobs = jobs
        if store is not None:
            self.store: Optional[CampaignStore] = store
        else:
            self.store = (
                CampaignStore(Path(cache_dir) / "campaigns")
                if cache_dir is not None
                else None
            )
        if context is not None:
            self._validate_context(context)
        self._context = context
        self._run_start = time.monotonic()
        self.shards_per_job = max(1, shards_per_job)
        self.progress = progress
        self.progress_interval = progress_interval
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        self.checkpoint_interval = checkpoint_interval
        self._last_checkpoint = 0.0
        self._serial: Optional[object] = None
        self._busy_seconds = 0.0
        self._warmup_seconds = 0.0
        self._context_warmed = False
        self._ff_order_cache: Optional[List[str]] = None
        self.last_report = EngineReport()
        #: Bookkeeping of the most recent sequential-policy run (rounds,
        #: injections saved, realized margins); empty for flat runs.
        self.last_policy_meta: Dict = {}

    def _validate_context(self, context: CampaignContext) -> None:
        """Guard the invariants a caller-supplied context must share with the
        spec: workers (jobs > 1) and the result store trust the spec alone,
        so a divergent context would silently poison both."""
        from ..faultinjection.classify import AnyOutputCriterion, PacketInterfaceCriterion

        if context.netlist.name != self.spec.circuit:
            raise ValueError(
                f"context netlist {context.netlist.name!r} does not match "
                f"spec circuit {self.spec.circuit!r}"
            )
        expected = (
            PacketInterfaceCriterion if self.spec.criterion == "packet" else AnyOutputCriterion
        )
        if not isinstance(context.criterion, expected):
            raise ValueError(
                f"context criterion {type(context.criterion).__name__} does not "
                f"match spec criterion {self.spec.criterion!r}"
            )

    @property
    def context(self) -> CampaignContext:
        """The execution environment, resolved through the process-wide warm
        cache: a caller-provided context is adopted into the cache (fixing
        the historical double build on the serial path), an absent one
        resolves to the family's resident context or is built exactly once
        per process (see :mod:`repro.campaigns.warmstart`)."""
        if not self._context_warmed:
            start = time.perf_counter()
            self._context, hit = warmstart.warm_context(self.spec, self._context)
            self._context_warmed = True
            if not hit:
                self._warmup_seconds += time.perf_counter() - start
        return self._context

    def _ff_order(self) -> List[str]:
        """Canonical flip-flop order (netlist insertion order — the same
        ordering every simulator's ``ff_index`` assigns), used to rehydrate
        packed shard tallies."""
        if self._ff_order_cache is None:
            self._ff_order_cache = [ff.name for ff in self.context.netlist.flip_flops()]
        return self._ff_order_cache

    def _decode_ff(self, payload: Dict) -> None:
        """Rehydrate a packed tally block into the name-keyed counter map
        the accumulator, store documents and checkpoints are built from.
        Plain dict maps (chaos stand-ins, externally crafted payloads) pass
        through untouched."""
        ff = payload.get("ff")
        if isinstance(ff, dict) and isinstance(ff.get("idx"), bytes):
            payload["ff"] = warmstart.unpack_tallies(ff, self._ff_order())

    def _note_warm(self, hit: bool, warmup: float) -> None:
        report = self.last_report
        if hit:
            report.warm_hits += 1
        else:
            report.warm_misses += 1
            self._warmup_seconds += warmup

    def _warm_runner(self) -> object:
        """Parent-side warm-up: the resident (unwrapped) shard runner for
        this spec, built on first use and reused by every later engine,
        serial fallback and forked worker of the same family."""
        runner, hit, warmup = warmstart.ensure_runner(
            self.spec, _ShardRunner, context=self._context
        )
        self._note_warm(hit, warmup)
        return runner

    def _serial_runner(self):
        """The in-process shard runner (resolved through the warm cache,
        chaos-wrapped when the engine carries a chaos spec) shared by serial
        execution and the supervisor's degraded-pool fallback."""
        if self._serial is None:
            runner = self._warm_runner()
            if self.chaos is not None:
                from ..verify.chaos import ChaosShardRunner

                runner = ChaosShardRunner(runner, self.chaos, in_worker=False)
            self._serial = runner
        return self._serial

    def _absorb_supervisor(self, sup: SupervisedPool, report: EngineReport) -> None:
        report.retries += sup.retries
        report.pool_rebuilds += sup.rebuilds
        report.degraded_serial = report.degraded_serial or sup.degraded
        if sup.rebuilds and warmstart.resolve_runner(self.spec) is not None:
            # Replacement pools re-forked from the still-warm parent: each
            # rebuild reused the resident context/kernels instead of paying
            # a per-worker cold build.
            report.warm_rebuild_reuses += sup.rebuilds
            get_telemetry().registry.counter("warmstart.rebuild_reuses").inc(
                sup.rebuilds
            )

    # ----------------------------------------------------------------- run

    def run(self, resume: bool = True) -> CampaignResult:
        """Execute (or load, or top up) the campaign described by the spec."""
        spec = self.spec
        with get_telemetry().tracer.span(
            "campaign",
            circuit=spec.circuit,
            n_injections=spec.n_injections,
            backend=spec.backend,
            scheduler=spec.scheduler,
            schedule=spec.schedule,
            policy=spec.policy,
            jobs=self.jobs,
        ):
            if spec.policy == "sequential":
                return self._run_sequential(resume)
            return self._run(resume)

    def _run(self, resume: bool) -> CampaignResult:
        start_time = self._run_start = time.monotonic()
        self._last_checkpoint = start_time
        spec = self.spec
        report = EngineReport(jobs=self.jobs)
        self.last_report = report

        if self.store is not None:
            exact = self.store.load_exact(spec)
            if exact is not None:
                report.cache_hit = True
                report.base_injections = spec.n_injections
                report.wall_seconds = time.monotonic() - start_time
                return exact

        base: Optional[CampaignResult] = None
        base_n = 0
        if self.store is not None and spec.schedule == "stream":
            found = self.store.best_snapshot(spec)
            if found is not None:
                base_n, base = found
                get_telemetry().registry.counter("store.topups").inc()
        report.base_injections = base_n

        context = self.context
        window = context.window_cycles()
        ff_names = context.ff_names(spec)
        if spec.schedule == "legacy":
            buckets = legacy_buckets(spec, window, ff_names)
        else:
            buckets = stream_buckets(
                spec, window, ff_names, start=base_n, stop=spec.n_injections
            )

        accum = _Accumulator()
        done_cycles: Set[int] = set()
        if self.store is not None and resume:
            checkpoint = self.store.load_partial(spec, base_n, spec.n_injections)
            if checkpoint is not None:
                done_cycles, accum_payload = checkpoint
                accum = _Accumulator.from_payload(accum_payload)
                report.resumed_buckets = len(done_cycles)
        pending = [b for b in buckets if b.cycle not in done_cycles]

        n_shards = min(len(pending), max(1, self.jobs * self.shards_per_job))
        shards = partition_shards(pending, n_shards) if pending else []
        report.n_shards = len(shards)

        try:
            if self.jobs > 1 and len(shards) > 1:
                self._run_parallel(shards, accum, done_cycles, report)
            else:
                self._run_serial(shards, accum, done_cycles, report)
        except BaseException:
            self._checkpoint(base_n, done_cycles, accum)
            raise

        result = self._assemble(ff_names, base, accum)
        # accum.wall_seconds carries time spent by interrupted predecessors
        # (restored from the checkpoint); base carries prior snapshots'.
        result.wall_seconds = (
            (base.wall_seconds if base else 0.0)
            + accum.wall_seconds
            + (time.monotonic() - start_time)
        )
        if self.store is not None:
            if report.quarantined_shards:
                # Incomplete counters must never be served as an exact hit:
                # persist them as a partial so a rerun retries only the
                # quarantined buckets.
                self._checkpoint(base_n, done_cycles, accum)
                get_telemetry().registry.counter(
                    "robustness.incomplete_campaigns"
                ).inc()
            else:
                self.store.save_snapshot(spec, result)
        report.wall_seconds = time.monotonic() - start_time
        self._record_run_metrics(report)
        return result

    def _record_run_metrics(self, report: EngineReport) -> None:
        """End-of-run rollups: throughput, worker utilization, warm-up."""
        registry = get_telemetry().registry
        report.warmup_seconds = self._warmup_seconds
        registry.timer("engine.warmup_seconds").observe(self._warmup_seconds)
        if report.wall_seconds > 0 and report.executed_lanes:
            registry.gauge("campaign.injections_per_sec").set(
                report.executed_lanes / report.wall_seconds
            )
        if report.wall_seconds > 0 and self._busy_seconds > 0:
            registry.gauge("campaign.worker_utilization").set(
                min(1.0, self._busy_seconds / (self.jobs * report.wall_seconds))
            )

    # -------------------------------------------------- sequential sampling

    def _run_sequential(self, resume: bool) -> CampaignResult:
        """Round-based adaptive campaign driven by the sampling policy.

        Each round asks the policy for per-flip-flop draw ranges
        (:meth:`~repro.campaigns.policy.SamplingPolicy.allocate`), schedules
        exactly those prefix-stable draws, executes them gate-checked (a
        flip-flop whose Wilson interval collapses mid-shard stops consuming
        lanes immediately), merges the tallies and repeats until the policy
        allocates nothing.  Tallies are ``{ff: [n, k, consumed]}`` — see
        :class:`~repro.campaigns.policy.SamplingPolicy` for the invariant
        ``k <= n <= consumed`` that keeps draw indices single-use even when
        gating skips scheduled draws.

        Results are deterministic for a fixed ``(seed, jobs,
        shards_per_job)``; unlike the flat path they may vary with the shard
        partition, because gating decisions depend on shard-local verdict
        order.  ``target_margin=0.0`` never retires anything and reproduces
        the flat counters bit-for-bit.

        Shards run through the same :class:`SupervisedPool` as the flat
        path (one supervisor — and one warm worker pool — for the whole
        campaign).  A quarantined shard's draws are *abandoned*: their
        ``consumed`` indices advance without executing, so the policy draws
        fresh replacement indices next round instead of re-allocating the
        poisoned ranges forever.
        """
        start_time = self._run_start = time.monotonic()
        spec = self.spec
        report = EngineReport(jobs=self.jobs)
        self.last_report = report
        signature = policy_signature(spec)
        registry = get_telemetry().registry

        if self.store is not None:
            found = self.store.load_policy_snapshot(spec, signature)
            if found is not None:
                result, meta = found
                report.cache_hit = True
                report.rounds = int(meta.get("rounds", 0))
                report.injections_saved = int(meta.get("injections_saved", 0))
                report.wall_seconds = time.monotonic() - start_time
                self.last_policy_meta = meta
                return result

        context = self.context
        window = context.window_cycles()
        ff_names = context.ff_names(spec)
        policy = make_policy(spec)

        tallies: Dict[str, List[int]] = {name: [0, 0, 0] for name in ff_names}
        accum = _Accumulator()
        resumed = False
        if self.store is not None and resume:
            checkpoint = self.store.load_policy_partial(spec, signature)
            if checkpoint is not None and set(checkpoint[0]) == set(ff_names):
                tallies, accum_payload = checkpoint
                accum = _Accumulator.from_payload(accum_payload)
                resumed = True
        if not resumed and self.store is not None:
            # A flat snapshot of the family is a valid prefix of every
            # flip-flop's draw stream: seed the tallies from it and only
            # simulate what the policy wants beyond it.
            found = self.store.best_snapshot(spec)
            if found is not None:
                base_n, base = found
                report.base_injections = base_n
                registry.counter("store.topups").inc()
                for name in ff_names:
                    prior = base.results.get(name)
                    if prior is not None and prior.n_injections > 0:
                        tallies[name] = [
                            prior.n_injections,
                            prior.n_failures,
                            prior.n_injections,
                        ]
                        accum.ff[name] = [
                            prior.n_injections,
                            prior.n_failures,
                            prior.latency_sum,
                        ]
                accum.n_forward_runs += base.n_forward_runs
                accum.total_lane_cycles += base.total_lane_cycles
                accum.wall_seconds += base.wall_seconds

        def serial_fn(payload, attempt: int) -> Dict:
            shard, tallies_snapshot = payload
            gate = ShardGate(policy, tallies_snapshot)
            return self._serial_runner().run_shard(shard, gate=gate, attempt=attempt)

        chaos_payload = self.chaos.to_dict() if self.chaos is not None else None
        mp_ctx = _mp_context()
        if self.jobs > 1 and mp_ctx.get_start_method() == "fork":
            # Warm the cache before the pool forks: workers (and every
            # later pool rebuild) inherit the resident runner instead of
            # each paying a cold build.
            self._warm_runner()
        sup = SupervisedPool(
            _worker_run_shard_gated,
            jobs=self.jobs,
            initializer=_worker_init,
            initargs=(spec.to_dict(), chaos_payload),
            retry=self.retry,
            serial_fn=serial_fn,
            validate=_shard_payload_error,
            mp_context=mp_ctx,
        )
        # The policy checkpoint is a per-flip-flop *cursor* (``consumed``),
        # which is only truthful at round boundaries: a completed round
        # executed (or deliberately gate-skipped) every draw of its
        # contiguous allocation, so the cursor really is a stream prefix.
        # Mid-round, the merged shards hold an arbitrary *subset* of the
        # round's slots — checkpointing that state would make a resumed run
        # re-execute some draws and silently skip others.  The exception
        # path therefore persists the last round-*start* state, discarding
        # at most one round of work in exchange for bit-identical resume.
        safe_tallies = {name: list(rec) for name, rec in tallies.items()}
        safe_accum = _Accumulator.from_payload(accum.to_payload())
        clean = False
        try:
            while True:
                allocation = policy.allocate(tallies, len(window))
                if not allocation:
                    break
                report.rounds += 1
                buckets = stream_buckets_ranged(spec, window, allocation)
                if not buckets:
                    break
                n_shards = min(len(buckets), max(1, self.jobs * self.shards_per_job))
                shards = partition_shards(buckets, n_shards)
                report.n_shards += len(shards)
                tasks = [[(b.cycle, b.lanes) for b in shard] for shard in shards]
                snapshot = {name: list(rec) for name, rec in tallies.items()}
                payload_tasks = [(task, snapshot) for task in tasks]
                done_in_round = 0
                for outcome in sup.run(payload_tasks):
                    done_in_round += 1
                    if outcome.quarantine is not None:
                        report.quarantined_shards.append(outcome.quarantine.to_dict())
                        # The quarantined shard's draws are abandoned, but
                        # they still consumed their stream indices: advance
                        # `consumed` so the policy allocates *fresh* draws
                        # instead of retrying the same poisoned ranges
                        # every round (which would never terminate).
                        abandoned = 0
                        for _cycle, lanes in tasks[outcome.key]:
                            for name in lanes:
                                tallies[name][2] += 1
                                abandoned += 1
                        registry.counter("robustness.abandoned_draws").inc(abandoned)
                        if self.progress is not None:
                            self.progress(done_in_round, len(tasks))
                        continue
                    payload = outcome.payload
                    self._decode_ff(payload)
                    accum.merge_shard(payload)
                    report.executed_buckets += len(payload["done_cycles"])
                    report.executed_forward_runs += payload["n_forward_runs"]
                    shard_lanes = sum(rec[0] for rec in payload["ff"].values())
                    report.executed_lanes += shard_lanes
                    self._busy_seconds += payload.get("wall_seconds", 0.0)
                    metrics = payload.get("metrics")
                    if metrics:
                        registry.absorb(MetricsSnapshot.from_payload(metrics))
                    registry.counter("campaign.shard_merges").inc()
                    registry.counter("campaign.injections").inc(shard_lanes)
                    # Executed and gate-skipped draws both consumed their
                    # stream indices; advancing per payload keeps the
                    # checkpoint invariant (n <= consumed) intact even if a
                    # later shard of the round never completes.
                    for name, rec in payload["ff"].items():
                        tally = tallies[name]
                        tally[0] += rec[0]
                        tally[1] += rec[1]
                        tally[2] += rec[0]
                    for name, count in payload.get("skipped", {}).items():
                        tallies[name][2] += count
                        registry.counter("policy.shard_skips").inc(count)
                    if self.progress is not None:
                        self.progress(done_in_round, len(tasks))
                self._policy_checkpoint(signature, tallies, accum)
                safe_tallies = {name: list(rec) for name, rec in tallies.items()}
                safe_accum = _Accumulator.from_payload(accum.to_payload())
            clean = True
        except BaseException:
            self._policy_checkpoint(signature, safe_tallies, safe_accum)
            raise
        finally:
            # Clean exits let in-flight worker teardown finish
            # (close/join); the exception path terminates immediately.
            sup.shutdown(clean)
            self._absorb_supervisor(sup, report)

        result = CampaignResult(
            circuit=spec.circuit, n_injections=spec.n_injections, seed=spec.seed
        )
        for name in ff_names:
            record = FlipFlopResult(name)
            rec = accum.ff.get(name)
            if rec is not None:
                record.n_injections = int(rec[0])
                record.n_failures = int(rec[1])
                record.latency_sum = int(rec[2])
            result.results[name] = record
        result.n_forward_runs = accum.n_forward_runs
        result.total_lane_cycles = accum.total_lane_cycles
        result.wall_seconds = accum.wall_seconds + (time.monotonic() - start_time)

        total_executed = sum(rec[0] for rec in tallies.values())
        flat_total = spec.n_injections * len(ff_names)
        saved = max(0, flat_total - total_executed)
        report.injections_saved = saved
        registry.counter("policy.rounds").inc(report.rounds)
        registry.counter("policy.injections_saved").inc(saved)
        margins = realized_margins(tallies, getattr(policy, "confidence", 0.95))
        for name in ff_names:
            registry.histogram("policy.stopping_time").observe(tallies[name][0])
        worst = max(margins.values()) if margins else float("nan")
        mean = sum(margins.values()) / len(margins) if margins else float("nan")
        if margins:
            registry.gauge("policy.realized_margin").set(worst)
            registry.gauge("policy.realized_margin_mean").set(mean)
        meta = {
            "policy": spec.policy,
            "nominal": spec.n_injections,
            "target_margin": spec.target_margin,
            "rounds": report.rounds,
            "total_injections": total_executed,
            "flat_injections": flat_total,
            "injections_saved": saved,
            "realized_margin_max": worst,
            "realized_margin_mean": mean,
            "quarantined_shards": len(report.quarantined_shards),
        }
        self.last_policy_meta = meta
        if self.store is not None:
            if report.quarantined_shards:
                self._policy_checkpoint(signature, tallies, accum)
                registry.counter("robustness.incomplete_campaigns").inc()
            else:
                self.store.save_policy_snapshot(spec, signature, result, meta)
        report.wall_seconds = time.monotonic() - start_time
        self._record_run_metrics(report)
        return result

    def _policy_checkpoint(
        self, signature: str, tallies: Dict[str, List[int]], accum: _Accumulator
    ) -> None:
        if self.store is not None and any(rec[2] for rec in tallies.values()):
            payload = accum.to_payload()
            payload["wall_seconds"] = accum.wall_seconds + (
                time.monotonic() - self._run_start
            )
            self.store.save_policy_partial(self.spec, signature, tallies, payload)

    # ------------------------------------------------------------ execution

    def _consume(
        self,
        outcomes: Iterable[ShardOutcome],
        total: int,
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
        base_n: int,
    ) -> None:
        telemetry = get_telemetry()
        registry = telemetry.registry
        start = time.monotonic()

        def notify(done_shards: int, total_shards: int) -> None:
            elapsed = time.monotonic() - start
            rate = report.executed_lanes / elapsed if elapsed > 0 else 0.0
            if rate > 0:
                registry.gauge("campaign.injections_per_sec").set(rate)
            if telemetry.active:
                remaining = total_shards - done_shards
                telemetry.emit(
                    {
                        "event": "progress",
                        "scope": "campaign",
                        "unit": "shards",
                        "done": done_shards,
                        "total": total_shards,
                        "injections": report.executed_lanes,
                        "injections_per_sec": rate,
                        "eta_seconds": (
                            remaining * elapsed / done_shards if done_shards else None
                        ),
                    }
                )
            if self.progress is not None:
                self.progress(done_shards, total_shards)

        throttled = ProgressThrottle(notify, min_interval=self.progress_interval)
        done = 0
        for outcome in outcomes:
            done += 1
            if outcome.quarantine is not None:
                report.quarantined_shards.append(outcome.quarantine.to_dict())
                throttled(done, total)
                continue
            payload = outcome.payload
            self._decode_ff(payload)
            accum.merge_shard(payload)
            done_cycles.update(payload["done_cycles"])
            report.executed_buckets += len(payload["done_cycles"])
            report.executed_forward_runs += payload["n_forward_runs"]
            shard_lanes = sum(rec[0] for rec in payload["ff"].values())
            report.executed_lanes += shard_lanes
            self._busy_seconds += payload.get("wall_seconds", 0.0)
            metrics = payload.get("metrics")
            if metrics:  # worker shard: absorb its snapshot into our registry
                registry.absorb(MetricsSnapshot.from_payload(metrics))
            registry.counter("campaign.shard_merges").inc()
            registry.counter("campaign.injections").inc(shard_lanes)
            if done < total:  # final state is persisted as a snapshot instead
                self._maybe_checkpoint(base_n, done_cycles, accum)
            throttled(done, total)

    def _run_serial(
        self,
        shards: List[List[Bucket]],
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
    ) -> None:
        if not shards:
            return
        tasks = [[(b.cycle, b.lanes) for b in shard] for shard in shards]

        def serial_fn(payload, attempt: int) -> Dict:
            return self._serial_runner().run_shard(payload, attempt=attempt)

        sup = SupervisedPool(
            _worker_run_shard,
            jobs=1,
            retry=self.retry,
            serial_fn=serial_fn,
            validate=_shard_payload_error,
        )
        clean = False
        try:
            self._consume(
                sup.run(tasks),
                len(tasks),
                accum,
                done_cycles,
                report,
                report.base_injections,
            )
            clean = True
        finally:
            sup.shutdown(clean)
            self._absorb_supervisor(sup, report)

    def _run_parallel(
        self,
        shards: List[List[Bucket]],
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
    ) -> None:
        tasks = [[(b.cycle, b.lanes) for b in shard] for shard in shards]
        chaos_payload = self.chaos.to_dict() if self.chaos is not None else None

        def serial_fn(payload, attempt: int) -> Dict:
            return self._serial_runner().run_shard(payload, attempt=attempt)

        mp_ctx = _mp_context()
        if mp_ctx.get_start_method() == "fork":
            # Build once pre-fork; N workers (and any rebuilds) inherit it.
            self._warm_runner()
        sup = SupervisedPool(
            _worker_run_shard,
            jobs=min(self.jobs, len(shards)),
            initializer=_worker_init,
            initargs=(self.spec.to_dict(), chaos_payload),
            retry=self.retry,
            serial_fn=serial_fn,
            validate=_shard_payload_error,
            mp_context=mp_ctx,
        )
        clean = False
        try:
            self._consume(
                sup.run(tasks),
                len(tasks),
                accum,
                done_cycles,
                report,
                report.base_injections,
            )
            clean = True
        finally:
            sup.shutdown(clean)
            self._absorb_supervisor(sup, report)

    # ------------------------------------------------------------- plumbing

    def _maybe_checkpoint(
        self, base_n: int, done_cycles: Set[int], accum: _Accumulator
    ) -> None:
        """Throttled mid-run checkpoint: skip when the last write is recent.

        Checkpoints are full-payload JSON writes, so per-shard writes made
        store I/O O(shards).  Exit paths (exception, quarantine completion)
        call :meth:`_checkpoint` directly and always write, bounding lost
        work to one throttle interval.
        """
        if (
            self.checkpoint_interval > 0
            and (time.monotonic() - self._last_checkpoint) < self.checkpoint_interval
        ):
            get_telemetry().registry.counter("store.checkpoint_skips").inc()
            return
        self._checkpoint(base_n, done_cycles, accum)

    def _checkpoint(
        self, base_n: int, done_cycles: Set[int], accum: _Accumulator
    ) -> None:
        if self.store is not None and done_cycles:
            payload = accum.to_payload()
            payload["wall_seconds"] = accum.wall_seconds + (
                time.monotonic() - self._run_start
            )
            self.store.save_partial(
                self.spec, base_n, self.spec.n_injections, done_cycles, payload
            )
            self._last_checkpoint = time.monotonic()

    def _assemble(
        self,
        ff_names: Sequence[str],
        base: Optional[CampaignResult],
        accum: _Accumulator,
    ) -> CampaignResult:
        spec = self.spec
        result = CampaignResult(
            circuit=spec.circuit, n_injections=spec.n_injections, seed=spec.seed
        )
        for name in ff_names:
            record = FlipFlopResult(name)
            if base is not None and name in base.results:
                prior = base.results[name]
                record.n_injections += prior.n_injections
                record.n_failures += prior.n_failures
                record.latency_sum += prior.latency_sum
            delta = accum.ff.get(name)
            if delta is not None:
                record.n_injections += delta[0]
                record.n_failures += delta[1]
                record.latency_sum += delta[2]
            result.results[name] = record
        result.n_forward_runs = (base.n_forward_runs if base else 0) + accum.n_forward_runs
        result.total_lane_cycles = (
            base.total_lane_cycles if base else 0
        ) + accum.total_lane_cycles
        return result


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    resume: bool = True,
    context: Optional[CampaignContext] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    progress_interval: float = 0.1,
    retry: Optional[RetryPolicy] = None,
    chaos=None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        spec,
        jobs=jobs,
        cache_dir=cache_dir,
        context=context,
        progress=progress,
        progress_interval=progress_interval,
        retry=retry,
        chaos=chaos,
    )
    return engine.run(resume=resume)
