"""The campaign engine: sharded execution, merging, caching, resume.

:class:`CampaignEngine` turns a :class:`~repro.campaigns.spec.CampaignSpec`
into a :class:`~repro.faultinjection.campaign.CampaignResult`:

1. consult the :class:`~repro.campaigns.store.CampaignStore` (if a cache
   directory is configured) — an exact snapshot hit costs zero forward
   simulations, and with the ``stream`` schedule a smaller snapshot seeds an
   incremental top-up;
2. plan the remaining injection draws as time-slot buckets and partition
   them into balanced shards;
3. run the shards — in worker processes (``jobs > 1``), each of which
   rebuilds its own netlist/golden trace/:class:`FaultInjector` from the
   picklable spec, or serially in-process as a fallback;
4. merge the per-flip-flop counters (pure integer sums, so the merged
   result is bit-identical to a serial run of the same schedule) and
   checkpoint progress to the store after every shard.

``KeyboardInterrupt`` (or any other error) mid-campaign leaves a valid
checkpoint behind; the next run with the same spec resumes from it.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..faultinjection.campaign import CampaignResult, FlipFlopResult
from ..faultinjection.injector import FaultInjector
from ..faultinjection.scheduler import AdaptiveScheduler
from ..obs import (
    MetricsSnapshot,
    ProgressThrottle,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from .partition import (
    Bucket,
    legacy_buckets,
    partition_shards,
    stream_buckets,
    stream_buckets_ranged,
)
from .policy import ShardGate, make_policy, policy_signature, realized_margins
from .spec import CampaignContext, CampaignSpec, build_context
from .store import CampaignStore

__all__ = ["CampaignEngine", "EngineReport", "run_campaign"]

#: Shards per worker process: more shards than workers smooths load balance
#: and tightens checkpoint granularity without measurable overhead.
SHARDS_PER_JOB = 4


@dataclass
class EngineReport:
    """What one :meth:`CampaignEngine.run` actually did (vs. reused)."""

    jobs: int = 1
    cache_hit: bool = False
    base_injections: int = 0
    resumed_buckets: int = 0
    executed_buckets: int = 0
    executed_lanes: int = 0
    executed_forward_runs: int = 0
    n_shards: int = 0
    wall_seconds: float = 0.0
    #: Sequential-policy rounds driven (0 for the flat single-round path).
    rounds: int = 0
    #: Injections the sampling policy avoided vs. the flat protocol's
    #: ``nominal × n_ffs`` total (0 for flat).
    injections_saved: int = 0


@dataclass
class _Accumulator:
    """Mergeable per-flip-flop counters plus engine-level metrics."""

    ff: Dict[str, List[int]] = field(default_factory=dict)
    n_forward_runs: int = 0
    total_lane_cycles: int = 0
    wall_seconds: float = 0.0

    def merge_shard(self, payload: Dict) -> None:
        for name, (inj, fail, lat) in payload["ff"].items():
            rec = self.ff.setdefault(name, [0, 0, 0])
            rec[0] += inj
            rec[1] += fail
            rec[2] += lat
        self.n_forward_runs += payload["n_forward_runs"]
        self.total_lane_cycles += payload["total_lane_cycles"]

    def to_payload(self) -> Dict:
        return {
            "ff": self.ff,
            "n_forward_runs": self.n_forward_runs,
            "total_lane_cycles": self.total_lane_cycles,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "_Accumulator":
        acc = cls(
            n_forward_runs=payload.get("n_forward_runs", 0),
            total_lane_cycles=payload.get("total_lane_cycles", 0),
            wall_seconds=payload.get("wall_seconds", 0.0),
        )
        acc.ff = {name: list(rec) for name, rec in payload.get("ff", {}).items()}
        return acc


class _ShardRunner:
    """Executes buckets against one injector (one per process).

    With the default ``adaptive`` scheduler a shard's buckets all feed one
    long-lived :class:`~repro.faultinjection.scheduler.AdaptiveScheduler`,
    so lanes freed by early retirement are refilled with the shard's later
    injections instead of draining per-bucket batches.  ``scheduler="batch"``
    keeps the original one-forward-run-per-time-slot execution.  Per-lane
    verdicts are identical either way, so shard merges stay bit-exact.
    """

    def __init__(self, spec: CampaignSpec, context: CampaignContext) -> None:
        self.spec = spec
        golden = context.ensure_golden()
        self.injector = FaultInjector(
            context.netlist,
            context.workload.testbench,
            golden,
            context.criterion,
            check_interval=spec.check_interval,
            backend=spec.backend,
            fault_model=spec.fault_model,
        )
        self.scheduler: Optional[AdaptiveScheduler] = None
        if spec.scheduler == "adaptive":
            # max_lanes=None: backend-tuned wide passes (spec.max_lanes is
            # the *batch* chunk width; refill keeps wider passes saturated).
            self.scheduler = AdaptiveScheduler(self.injector, max_lanes=None)

    @classmethod
    def from_spec(cls, spec: CampaignSpec) -> "_ShardRunner":
        return cls(spec, build_context(spec))

    def run_shard(
        self,
        buckets: Sequence[Tuple[int, Sequence[str]]],
        gate: Optional[ShardGate] = None,
    ) -> Dict:
        """Simulate a shard's buckets; return mergeable counters.

        *gate*, when given, is the sampling policy's online decision point:
        every injection is offered to ``gate.admit`` before it costs a lane,
        and verdicts are reported back so in-shard tallies tighten as lanes
        retire.  Skipped draws are returned in the payload's ``"skipped"``
        map — they consumed their draw-stream indices without executing.

        The payload also carries the shard's wall time (feeds the engine's
        worker-utilization gauge) and, per backend, a lane-cycles/sec gauge
        observation in the *current* telemetry registry — which is the
        worker's own throwaway registry when running in a pool process, and
        the engine's when running serially.
        """
        start = time.perf_counter()
        payload = (
            self._run_shard_scheduled(buckets, gate)
            if self.scheduler is not None
            else self._run_shard_batches(buckets, gate)
        )
        wall = time.perf_counter() - start
        payload["wall_seconds"] = wall
        registry = get_telemetry().registry
        registry.timer("executor.shard_seconds").observe(wall)
        if wall > 0:
            registry.gauge(f"sim.{self.spec.backend}.lane_cycles_per_sec").set(
                payload["total_lane_cycles"] / wall
            )
        return payload

    def _run_shard_batches(
        self,
        buckets: Sequence[Tuple[int, Sequence[str]]],
        gate: Optional[ShardGate] = None,
    ) -> Dict:
        spec = self.spec
        injector = self.injector
        ff: Dict[str, List[int]] = {}
        n_runs = 0
        lane_cycles = 0
        for cycle, lanes in buckets:
            if gate is not None:
                lanes = tuple(name for name in lanes if gate.admit(name))
                if not lanes:
                    continue
            indices = [injector.ff_index(name) for name in lanes]
            for start in range(0, len(indices), spec.max_lanes):
                chunk = indices[start : start + spec.max_lanes]
                names = lanes[start : start + spec.max_lanes]
                outcome = injector.run_batch(cycle, chunk, horizon=spec.horizon)
                n_runs += 1
                lane_cycles += outcome.cycles_simulated * len(chunk)
                for lane, name in enumerate(names):
                    failed = bool((outcome.failed_mask >> lane) & 1)
                    if gate is not None:
                        gate.record(name, failed)
                    rec = ff.setdefault(name, [0, 0, 0])
                    rec[0] += 1
                    if failed:
                        rec[1] += 1
                        rec[2] += outcome.latencies.get(lane, 0)
        return {
            "ff": ff,
            "n_forward_runs": n_runs,
            "total_lane_cycles": lane_cycles,
            "done_cycles": [cycle for cycle, _ in buckets],
            "skipped": dict(gate.skipped) if gate is not None else {},
        }

    def _run_shard_scheduled(
        self,
        buckets: Sequence[Tuple[int, Sequence[str]]],
        gate: Optional[ShardGate] = None,
    ) -> Dict:
        injector = self.injector
        requests: List[Tuple[int, int]] = []
        names: List[str] = []
        for cycle, lanes in buckets:
            for name in lanes:
                requests.append((cycle, injector.ff_index(name)))
                names.append(name)
        admit = on_verdict = None
        if gate is not None:
            admit = lambda req: gate.admit(names[req.key])  # noqa: E731
            on_verdict = lambda req, failed: gate.record(  # noqa: E731
                names[req.key], failed
            )
        outcome = self.scheduler.run(
            requests, horizon=self.spec.horizon, admit=admit, on_verdict=on_verdict
        )
        skipped_keys = frozenset(outcome.skipped)
        ff: Dict[str, List[int]] = {}
        skipped: Dict[str, int] = {}
        for key, (name, (failed, latency)) in enumerate(zip(names, outcome.verdicts)):
            if key in skipped_keys:
                skipped[name] = skipped.get(name, 0) + 1
                continue
            rec = ff.setdefault(name, [0, 0, 0])
            rec[0] += 1
            if failed:
                rec[1] += 1
                rec[2] += latency
        return {
            "ff": ff,
            "n_forward_runs": outcome.stats.n_passes,
            "total_lane_cycles": outcome.stats.lane_cycles,
            "done_cycles": [cycle for cycle, _ in buckets],
            "skipped": skipped,
        }


# --------------------------------------------------- worker process hooks

_WORKER: Optional[_ShardRunner] = None


def _worker_init(spec_payload: Dict) -> None:
    global _WORKER
    # Forked workers inherit the parent's telemetry — including any open
    # sink file handles — so replace it before building anything, or every
    # worker's synthesize/golden spans would interleave into the parent's
    # stream.
    set_telemetry(Telemetry())
    _WORKER = _ShardRunner.from_spec(CampaignSpec.from_dict(spec_payload))


def _worker_run_shard(shard: List[Tuple[int, Tuple[str, ...]]]) -> Dict:
    assert _WORKER is not None, "worker used before initialization"
    # Fresh per-shard telemetry: the shard's metrics travel back inside the
    # payload as a mergeable snapshot (the executor absorbs them), instead
    # of accumulating invisibly in the worker process.
    with use_telemetry(Telemetry()) as telemetry:
        payload = _WORKER.run_shard(shard)
        payload["metrics"] = telemetry.registry.snapshot().to_payload()
    return payload


def _worker_run_shard_gated(
    task: Tuple[List[Tuple[int, Tuple[str, ...]]], Dict[str, List[int]]]
) -> Dict:
    """Pool entry point for one sequential-policy shard.

    *task* is ``(shard, tallies)`` — the shard's buckets plus a snapshot of
    the campaign-wide ``[n, k, consumed]`` tallies at the round boundary.
    The worker rebuilds the policy from its spec and gates the shard with a
    :class:`~repro.campaigns.policy.ShardGate`, so flip-flops whose interval
    collapses mid-shard stop consuming lanes immediately.
    """
    shard, tallies = task
    assert _WORKER is not None, "worker used before initialization"
    gate = ShardGate(make_policy(_WORKER.spec), tallies)
    with use_telemetry(Telemetry()) as telemetry:
        payload = _WORKER.run_shard(shard, gate=gate)
        payload["metrics"] = telemetry.registry.snapshot().to_payload()
    return payload


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class CampaignEngine:
    """Parallel, cached, resumable campaign execution.

    Parameters
    ----------
    spec:
        Self-contained campaign description.
    jobs:
        Worker processes; ``1`` (default) runs everything in-process.
    cache_dir:
        Root of the result store (``<cache_dir>/campaigns/``).  ``None``
        disables persistence (no snapshots, no resume).
    context:
        Optional pre-built environment for the calling process, e.g. when
        the caller needs the same netlist/golden trace for feature
        extraction.  Workers always rebuild their own from the spec.
    progress:
        ``progress(done_shards, total_shards)`` callback.  Throttled to at
        most one call per *progress_interval* seconds (plus, always, the
        final ``(total, total)`` call); the same throttle drives the
        telemetry ``progress`` events the live sink renders.
    progress_interval:
        Minimum seconds between forwarded progress notifications
        (default 0.1); ``0`` restores the historical call-per-shard
        behavior.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
        context: Optional[CampaignContext] = None,
        shards_per_job: int = SHARDS_PER_JOB,
        progress: Optional[Callable[[int, int], None]] = None,
        progress_interval: float = 0.1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.spec = spec
        self.jobs = jobs
        self.store = (
            CampaignStore(Path(cache_dir) / "campaigns") if cache_dir is not None else None
        )
        if context is not None:
            self._validate_context(context)
        self._context = context
        self._run_start = time.monotonic()
        self.shards_per_job = max(1, shards_per_job)
        self.progress = progress
        self.progress_interval = progress_interval
        self._busy_seconds = 0.0
        self.last_report = EngineReport()
        #: Bookkeeping of the most recent sequential-policy run (rounds,
        #: injections saved, realized margins); empty for flat runs.
        self.last_policy_meta: Dict = {}

    def _validate_context(self, context: CampaignContext) -> None:
        """Guard the invariants a caller-supplied context must share with the
        spec: workers (jobs > 1) and the result store trust the spec alone,
        so a divergent context would silently poison both."""
        from ..faultinjection.classify import AnyOutputCriterion, PacketInterfaceCriterion

        if context.netlist.name != self.spec.circuit:
            raise ValueError(
                f"context netlist {context.netlist.name!r} does not match "
                f"spec circuit {self.spec.circuit!r}"
            )
        expected = (
            PacketInterfaceCriterion if self.spec.criterion == "packet" else AnyOutputCriterion
        )
        if not isinstance(context.criterion, expected):
            raise ValueError(
                f"context criterion {type(context.criterion).__name__} does not "
                f"match spec criterion {self.spec.criterion!r}"
            )

    @property
    def context(self) -> CampaignContext:
        if self._context is None:
            self._context = build_context(self.spec)
        return self._context

    # ----------------------------------------------------------------- run

    def run(self, resume: bool = True) -> CampaignResult:
        """Execute (or load, or top up) the campaign described by the spec."""
        spec = self.spec
        with get_telemetry().tracer.span(
            "campaign",
            circuit=spec.circuit,
            n_injections=spec.n_injections,
            backend=spec.backend,
            scheduler=spec.scheduler,
            schedule=spec.schedule,
            policy=spec.policy,
            jobs=self.jobs,
        ):
            if spec.policy == "sequential":
                return self._run_sequential(resume)
            return self._run(resume)

    def _run(self, resume: bool) -> CampaignResult:
        start_time = self._run_start = time.monotonic()
        spec = self.spec
        report = EngineReport(jobs=self.jobs)
        self.last_report = report

        if self.store is not None:
            exact = self.store.load_exact(spec)
            if exact is not None:
                report.cache_hit = True
                report.base_injections = spec.n_injections
                report.wall_seconds = time.monotonic() - start_time
                return exact

        base: Optional[CampaignResult] = None
        base_n = 0
        if self.store is not None and spec.schedule == "stream":
            found = self.store.best_snapshot(spec)
            if found is not None:
                base_n, base = found
                get_telemetry().registry.counter("store.topups").inc()
        report.base_injections = base_n

        context = self.context
        window = context.window_cycles()
        ff_names = context.ff_names(spec)
        if spec.schedule == "legacy":
            buckets = legacy_buckets(spec, window, ff_names)
        else:
            buckets = stream_buckets(
                spec, window, ff_names, start=base_n, stop=spec.n_injections
            )

        accum = _Accumulator()
        done_cycles: Set[int] = set()
        if self.store is not None and resume:
            checkpoint = self.store.load_partial(spec, base_n, spec.n_injections)
            if checkpoint is not None:
                done_cycles, accum_payload = checkpoint
                accum = _Accumulator.from_payload(accum_payload)
                report.resumed_buckets = len(done_cycles)
        pending = [b for b in buckets if b.cycle not in done_cycles]

        n_shards = min(len(pending), max(1, self.jobs * self.shards_per_job))
        shards = partition_shards(pending, n_shards) if pending else []
        report.n_shards = len(shards)

        try:
            if self.jobs > 1 and len(shards) > 1:
                self._run_parallel(shards, accum, done_cycles, report)
            else:
                self._run_serial(shards, accum, done_cycles, report)
        except BaseException:
            self._checkpoint(base_n, done_cycles, accum)
            raise

        result = self._assemble(ff_names, base, accum)
        # accum.wall_seconds carries time spent by interrupted predecessors
        # (restored from the checkpoint); base carries prior snapshots'.
        result.wall_seconds = (
            (base.wall_seconds if base else 0.0)
            + accum.wall_seconds
            + (time.monotonic() - start_time)
        )
        if self.store is not None:
            self.store.save_snapshot(spec, result)
        report.wall_seconds = time.monotonic() - start_time
        self._record_run_metrics(report)
        return result

    def _record_run_metrics(self, report: EngineReport) -> None:
        """End-of-run rollups: throughput and worker utilization."""
        registry = get_telemetry().registry
        if report.wall_seconds > 0 and report.executed_lanes:
            registry.gauge("campaign.injections_per_sec").set(
                report.executed_lanes / report.wall_seconds
            )
        if report.wall_seconds > 0 and self._busy_seconds > 0:
            registry.gauge("campaign.worker_utilization").set(
                min(1.0, self._busy_seconds / (self.jobs * report.wall_seconds))
            )

    # -------------------------------------------------- sequential sampling

    def _run_sequential(self, resume: bool) -> CampaignResult:
        """Round-based adaptive campaign driven by the sampling policy.

        Each round asks the policy for per-flip-flop draw ranges
        (:meth:`~repro.campaigns.policy.SamplingPolicy.allocate`), schedules
        exactly those prefix-stable draws, executes them gate-checked (a
        flip-flop whose Wilson interval collapses mid-shard stops consuming
        lanes immediately), merges the tallies and repeats until the policy
        allocates nothing.  Tallies are ``{ff: [n, k, consumed]}`` — see
        :class:`~repro.campaigns.policy.SamplingPolicy` for the invariant
        ``k <= n <= consumed`` that keeps draw indices single-use even when
        gating skips scheduled draws.

        Results are deterministic for a fixed ``(seed, jobs,
        shards_per_job)``; unlike the flat path they may vary with the shard
        partition, because gating decisions depend on shard-local verdict
        order.  ``target_margin=0.0`` never retires anything and reproduces
        the flat counters bit-for-bit.
        """
        start_time = self._run_start = time.monotonic()
        spec = self.spec
        report = EngineReport(jobs=self.jobs)
        self.last_report = report
        signature = policy_signature(spec)
        registry = get_telemetry().registry

        if self.store is not None:
            found = self.store.load_policy_snapshot(spec, signature)
            if found is not None:
                result, meta = found
                report.cache_hit = True
                report.rounds = int(meta.get("rounds", 0))
                report.injections_saved = int(meta.get("injections_saved", 0))
                report.wall_seconds = time.monotonic() - start_time
                self.last_policy_meta = meta
                return result

        context = self.context
        window = context.window_cycles()
        ff_names = context.ff_names(spec)
        policy = make_policy(spec)

        tallies: Dict[str, List[int]] = {name: [0, 0, 0] for name in ff_names}
        accum = _Accumulator()
        resumed = False
        if self.store is not None and resume:
            checkpoint = self.store.load_policy_partial(spec, signature)
            if checkpoint is not None and set(checkpoint[0]) == set(ff_names):
                tallies, accum_payload = checkpoint
                accum = _Accumulator.from_payload(accum_payload)
                resumed = True
        if not resumed and self.store is not None:
            # A flat snapshot of the family is a valid prefix of every
            # flip-flop's draw stream: seed the tallies from it and only
            # simulate what the policy wants beyond it.
            found = self.store.best_snapshot(spec)
            if found is not None:
                base_n, base = found
                report.base_injections = base_n
                registry.counter("store.topups").inc()
                for name in ff_names:
                    prior = base.results.get(name)
                    if prior is not None and prior.n_injections > 0:
                        tallies[name] = [
                            prior.n_injections,
                            prior.n_failures,
                            prior.n_injections,
                        ]
                        accum.ff[name] = [
                            prior.n_injections,
                            prior.n_failures,
                            prior.latency_sum,
                        ]
                accum.n_forward_runs += base.n_forward_runs
                accum.total_lane_cycles += base.total_lane_cycles
                accum.wall_seconds += base.wall_seconds

        runner: Optional[_ShardRunner] = None
        pool = None
        try:
            while True:
                allocation = policy.allocate(tallies, len(window))
                if not allocation:
                    break
                report.rounds += 1
                buckets = stream_buckets_ranged(spec, window, allocation)
                if not buckets:
                    break
                n_shards = min(len(buckets), max(1, self.jobs * self.shards_per_job))
                shards = partition_shards(buckets, n_shards)
                report.n_shards += len(shards)
                tasks = [[(b.cycle, b.lanes) for b in shard] for shard in shards]
                snapshot = {name: list(rec) for name, rec in tallies.items()}
                if self.jobs > 1 and len(tasks) > 1:
                    if pool is None:
                        # One pool for the whole campaign: workers rebuild the
                        # netlist/golden trace once, not once per round.
                        pool = _mp_context().Pool(
                            processes=self.jobs,
                            initializer=_worker_init,
                            initargs=(spec.to_dict(),),
                        )
                    payloads = pool.imap_unordered(
                        _worker_run_shard_gated, [(task, snapshot) for task in tasks]
                    )
                else:
                    if runner is None:
                        runner = _ShardRunner(spec, self.context)
                    serial_runner = runner
                    payloads = (
                        serial_runner.run_shard(
                            task, gate=ShardGate(policy, snapshot)
                        )
                        for task in tasks
                    )
                done_in_round = 0
                for payload in payloads:
                    accum.merge_shard(payload)
                    report.executed_buckets += len(payload["done_cycles"])
                    report.executed_forward_runs += payload["n_forward_runs"]
                    shard_lanes = sum(rec[0] for rec in payload["ff"].values())
                    report.executed_lanes += shard_lanes
                    self._busy_seconds += payload.get("wall_seconds", 0.0)
                    metrics = payload.get("metrics")
                    if metrics:
                        registry.absorb(MetricsSnapshot.from_payload(metrics))
                    registry.counter("campaign.shard_merges").inc()
                    registry.counter("campaign.injections").inc(shard_lanes)
                    # Executed and gate-skipped draws both consumed their
                    # stream indices; advancing per payload keeps the
                    # checkpoint invariant (n <= consumed) intact even if a
                    # later shard of the round never completes.
                    for name, rec in payload["ff"].items():
                        tally = tallies[name]
                        tally[0] += rec[0]
                        tally[1] += rec[1]
                        tally[2] += rec[0]
                    for name, count in payload.get("skipped", {}).items():
                        tallies[name][2] += count
                        registry.counter("policy.shard_skips").inc(count)
                    done_in_round += 1
                    if self.progress is not None:
                        self.progress(done_in_round, len(tasks))
                self._policy_checkpoint(signature, tallies, accum)
        except BaseException:
            self._policy_checkpoint(signature, tallies, accum)
            raise
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

        result = CampaignResult(
            circuit=spec.circuit, n_injections=spec.n_injections, seed=spec.seed
        )
        for name in ff_names:
            record = FlipFlopResult(name)
            rec = accum.ff.get(name)
            if rec is not None:
                record.n_injections = int(rec[0])
                record.n_failures = int(rec[1])
                record.latency_sum = int(rec[2])
            result.results[name] = record
        result.n_forward_runs = accum.n_forward_runs
        result.total_lane_cycles = accum.total_lane_cycles
        result.wall_seconds = accum.wall_seconds + (time.monotonic() - start_time)

        total_executed = sum(rec[0] for rec in tallies.values())
        flat_total = spec.n_injections * len(ff_names)
        saved = max(0, flat_total - total_executed)
        report.injections_saved = saved
        registry.counter("policy.rounds").inc(report.rounds)
        registry.counter("policy.injections_saved").inc(saved)
        margins = realized_margins(tallies, getattr(policy, "confidence", 0.95))
        for name in ff_names:
            registry.histogram("policy.stopping_time").observe(tallies[name][0])
        worst = max(margins.values()) if margins else float("nan")
        mean = sum(margins.values()) / len(margins) if margins else float("nan")
        if margins:
            registry.gauge("policy.realized_margin").set(worst)
            registry.gauge("policy.realized_margin_mean").set(mean)
        meta = {
            "policy": spec.policy,
            "nominal": spec.n_injections,
            "target_margin": spec.target_margin,
            "rounds": report.rounds,
            "total_injections": total_executed,
            "flat_injections": flat_total,
            "injections_saved": saved,
            "realized_margin_max": worst,
            "realized_margin_mean": mean,
        }
        self.last_policy_meta = meta
        if self.store is not None:
            self.store.save_policy_snapshot(spec, signature, result, meta)
        report.wall_seconds = time.monotonic() - start_time
        self._record_run_metrics(report)
        return result

    def _policy_checkpoint(
        self, signature: str, tallies: Dict[str, List[int]], accum: _Accumulator
    ) -> None:
        if self.store is not None and any(rec[2] for rec in tallies.values()):
            payload = accum.to_payload()
            payload["wall_seconds"] = accum.wall_seconds + (
                time.monotonic() - self._run_start
            )
            self.store.save_policy_partial(self.spec, signature, tallies, payload)

    # ------------------------------------------------------------ execution

    def _consume(
        self,
        shard_payloads: Iterable[Dict],
        total: int,
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
        base_n: int,
    ) -> None:
        telemetry = get_telemetry()
        registry = telemetry.registry
        start = time.monotonic()

        def notify(done_shards: int, total_shards: int) -> None:
            elapsed = time.monotonic() - start
            rate = report.executed_lanes / elapsed if elapsed > 0 else 0.0
            if rate > 0:
                registry.gauge("campaign.injections_per_sec").set(rate)
            if telemetry.active:
                remaining = total_shards - done_shards
                telemetry.emit(
                    {
                        "event": "progress",
                        "scope": "campaign",
                        "unit": "shards",
                        "done": done_shards,
                        "total": total_shards,
                        "injections": report.executed_lanes,
                        "injections_per_sec": rate,
                        "eta_seconds": (
                            remaining * elapsed / done_shards if done_shards else None
                        ),
                    }
                )
            if self.progress is not None:
                self.progress(done_shards, total_shards)

        throttled = ProgressThrottle(notify, min_interval=self.progress_interval)
        done = 0
        for payload in shard_payloads:
            accum.merge_shard(payload)
            done_cycles.update(payload["done_cycles"])
            report.executed_buckets += len(payload["done_cycles"])
            report.executed_forward_runs += payload["n_forward_runs"]
            shard_lanes = sum(rec[0] for rec in payload["ff"].values())
            report.executed_lanes += shard_lanes
            self._busy_seconds += payload.get("wall_seconds", 0.0)
            metrics = payload.get("metrics")
            if metrics:  # worker shard: absorb its snapshot into our registry
                registry.absorb(MetricsSnapshot.from_payload(metrics))
            registry.counter("campaign.shard_merges").inc()
            registry.counter("campaign.injections").inc(shard_lanes)
            done += 1
            if done < total:  # final state is persisted as a snapshot instead
                self._checkpoint(base_n, done_cycles, accum)
            throttled(done, total)

    def _run_serial(
        self,
        shards: List[List[Bucket]],
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
    ) -> None:
        if not shards:
            return
        runner = _ShardRunner(self.spec, self.context)
        payloads = (
            runner.run_shard([(b.cycle, b.lanes) for b in shard]) for shard in shards
        )
        self._consume(
            payloads, len(shards), accum, done_cycles, report, report.base_injections
        )

    def _run_parallel(
        self,
        shards: List[List[Bucket]],
        accum: _Accumulator,
        done_cycles: Set[int],
        report: EngineReport,
    ) -> None:
        ctx = _mp_context()
        tasks = [[(b.cycle, b.lanes) for b in shard] for shard in shards]
        with ctx.Pool(
            processes=min(self.jobs, len(shards)),
            initializer=_worker_init,
            initargs=(self.spec.to_dict(),),
        ) as pool:
            self._consume(
                pool.imap_unordered(_worker_run_shard, tasks),
                len(shards),
                accum,
                done_cycles,
                report,
                report.base_injections,
            )

    # ------------------------------------------------------------- plumbing

    def _checkpoint(
        self, base_n: int, done_cycles: Set[int], accum: _Accumulator
    ) -> None:
        if self.store is not None and done_cycles:
            payload = accum.to_payload()
            payload["wall_seconds"] = accum.wall_seconds + (
                time.monotonic() - self._run_start
            )
            self.store.save_partial(
                self.spec, base_n, self.spec.n_injections, done_cycles, payload
            )

    def _assemble(
        self,
        ff_names: Sequence[str],
        base: Optional[CampaignResult],
        accum: _Accumulator,
    ) -> CampaignResult:
        spec = self.spec
        result = CampaignResult(
            circuit=spec.circuit, n_injections=spec.n_injections, seed=spec.seed
        )
        for name in ff_names:
            record = FlipFlopResult(name)
            if base is not None and name in base.results:
                prior = base.results[name]
                record.n_injections += prior.n_injections
                record.n_failures += prior.n_failures
                record.latency_sum += prior.latency_sum
            delta = accum.ff.get(name)
            if delta is not None:
                record.n_injections += delta[0]
                record.n_failures += delta[1]
                record.latency_sum += delta[2]
            result.results[name] = record
        result.n_forward_runs = (base.n_forward_runs if base else 0) + accum.n_forward_runs
        result.total_lane_cycles = (
            base.total_lane_cycles if base else 0
        ) + accum.total_lane_cycles
        return result


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    resume: bool = True,
    context: Optional[CampaignContext] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    progress_interval: float = 0.1,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignEngine`."""
    engine = CampaignEngine(
        spec,
        jobs=jobs,
        cache_dir=cache_dir,
        context=context,
        progress=progress,
        progress_interval=progress_interval,
    )
    return engine.run(resume=resume)
