"""Sampling policies: how many injections each flip-flop actually gets.

The paper's flat protocol spends the same 170 draws on every flip-flop,
because the Leveugle sizing formula
(:func:`~repro.faultinjection.fdr.required_sample_size`) is a *worst-case*
bound at ``p = 0.5``.  Most flip-flops are nowhere near the worst case —
their FDR estimate is pinned close to 0 or 1 after a few dozen draws — so a
*sequential* protocol that checks the Wilson interval as results arrive can
retire them early and spend the freed budget on the genuinely uncertain
ones.

A :class:`SamplingPolicy` makes that decision at two points:

* **between rounds** (:meth:`SamplingPolicy.allocate`) — given the merged
  per-flip-flop tallies, decide which flip-flops get how many more draws.
  Draws are addressed by their *index in the flip-flop's prefix-stable
  stream* (:func:`~repro.campaigns.partition.stream_draws`), so an
  allocation is a ``{ff: (start, stop)}`` range map and repeated runs with
  the same seed replay the same injection cycles;
* **inside a shard** (:class:`ShardGate`) — the
  :class:`~repro.faultinjection.scheduler.AdaptiveScheduler` refill queue
  asks the gate before activating each pending injection, and reports every
  verdict back as lanes retire, so a flip-flop whose interval collapses
  mid-shard stops consuming lanes immediately instead of at the next round
  boundary.

Two policies ship:

``flat``
    The paper protocol: every flip-flop gets exactly the nominal budget in
    one round, nothing is retired early.  ``CampaignSpec(policy="flat")``
    runs the unchanged engine path and is bit-identical to the
    pre-policy pipeline under fixed seeds.

``sequential``
    Per-flip-flop Wilson early stopping: a flip-flop is retired once its
    interval half-width falls under ``target_margin`` (after a minimum
    sample), and budget freed by retirement is reallocated to the
    widest-interval flip-flops, up to ``max_budget_factor`` times the
    nominal per-flip-flop budget.  ``target_margin=0.0`` never retires
    anything — the *fixed-seed equivalence mode*: it must reproduce the
    flat counters draw-for-draw (regression-tested on every library
    circuit in ``tests/test_policy.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..faultinjection.fdr import wilson_interval

__all__ = [
    "SAMPLING_POLICIES",
    "DEFAULT_TARGET_MARGIN",
    "SamplingPolicy",
    "FlatPolicy",
    "SequentialWilsonPolicy",
    "ShardGate",
    "make_policy",
    "policy_signature",
    "interval_margin",
    "realized_margins",
]

#: Valid ``CampaignSpec.policy`` values.  Single source of truth for spec
#: validation and the CLI ``--policy`` choices.
SAMPLING_POLICIES = ("flat", "sequential")

#: The paper's margin of error: ``required_sample_size(None, margin=0.075)``
#: is the 170-injections-per-flip-flop protocol.
DEFAULT_TARGET_MARGIN = 0.075

#: Minimum draws per flip-flop before any stopping decision.  Guards the
#: sequential policy against freak early streaks; clamped to the nominal
#: budget for tiny campaigns.
MIN_INJECTIONS = 24

#: Reallocation ceiling: a flip-flop may receive at most this multiple of
#: the nominal per-flip-flop budget (further capped by the active window,
#: since draws are sampled without replacement).
MAX_BUDGET_FACTOR = 4


def interval_margin(n: int, k: int, confidence: float = 0.95) -> float:
    """Wilson interval half-width of *k* failures in *n* injections."""
    low, high = wilson_interval(k, n, confidence)
    return (high - low) / 2.0


def realized_margins(
    tallies: Mapping[str, Sequence[int]], confidence: float = 0.95
) -> Dict[str, float]:
    """Per-flip-flop realized Wilson margins of a tally map."""
    return {
        name: interval_margin(rec[0], rec[1], confidence)
        for name, rec in tallies.items()
    }


class SamplingPolicy:
    """Decides, online, how the injection budget is spent per flip-flop.

    Tallies are ``{ff_name: [n, k, consumed]}``:

    * ``n`` — draws actually *executed* (what the Wilson interval is built
      from, and what the budget accounting charges);
    * ``k`` — failures among them;
    * ``consumed`` — the flip-flop's position in its prefix-stable draw
      stream.  In-shard gating may *skip* scheduled draws (they cost
      nothing, but their stream indices are spent), so ``consumed >= n``;
      allocating from ``consumed`` rather than ``n`` guarantees a draw
      index is never scheduled twice.
    """

    name = "abstract"

    def retired(self, n: int, k: int) -> bool:
        """Whether a flip-flop with tally ``(n, k)`` needs no more draws."""
        raise NotImplementedError

    def allocate(
        self, tallies: Mapping[str, Sequence[int]], window_len: int
    ) -> Dict[str, Tuple[int, int]]:
        """Draw-stream ranges ``{ff: (start, stop)}`` for the next round.

        ``start``/``stop`` index the flip-flop's prefix-stable draw stream
        (``start`` is always the flip-flop's current ``consumed``); an
        empty map means the campaign is finished.  Must be a deterministic
        function of the tallies (the engine replays it on resume).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class FlatPolicy(SamplingPolicy):
    """The paper protocol: one round, nominal draws for everyone."""

    nominal: int
    name = "flat"

    def retired(self, n: int, k: int) -> bool:
        return n >= self.nominal

    def allocate(
        self, tallies: Mapping[str, Sequence[int]], window_len: int
    ) -> Dict[str, Tuple[int, int]]:
        allocation: Dict[str, Tuple[int, int]] = {}
        for name, rec in tallies.items():
            missing = self.nominal - rec[0]
            if missing > 0:
                consumed = rec[2] if len(rec) > 2 else rec[0]
                allocation[name] = (consumed, consumed + missing)
        return allocation


@dataclass(frozen=True)
class SequentialWilsonPolicy(SamplingPolicy):
    """Sequential Wilson early stopping with budget reallocation.

    Parameters
    ----------
    nominal:
        The flat protocol's per-flip-flop budget (defines the total budget
        ``nominal × n_ffs`` the policy may not exceed).
    target_margin:
        Retire a flip-flop once its Wilson interval half-width is at or
        under this value.  ``0.0`` disables early stopping entirely (the
        fixed-seed equivalence mode).
    confidence:
        Confidence level of the per-flip-flop intervals.
    min_injections:
        No stopping decision before this many draws (clamped to *nominal*).
    round_size:
        Draws granted per flip-flop per round; ``None`` picks
        ``max(8, nominal // 4)`` — small enough that early stopping bites,
        large enough that scheduler passes stay saturated.
    max_per_ff:
        Reallocation ceiling per flip-flop; ``None`` picks
        ``MAX_BUDGET_FACTOR × nominal``.  Always additionally capped by the
        active-window length (draws are sampled without replacement).
    """

    nominal: int
    target_margin: float = DEFAULT_TARGET_MARGIN
    confidence: float = 0.95
    min_injections: Optional[int] = None
    round_size: Optional[int] = None
    max_per_ff: Optional[int] = None
    name = "sequential"

    def _min_injections(self) -> int:
        floor = MIN_INJECTIONS if self.min_injections is None else self.min_injections
        return max(1, min(floor, self.nominal))

    def _round_size(self) -> int:
        if self.round_size is not None:
            return max(1, self.round_size)
        return max(8, self.nominal // 4)

    def _cap(self, window_len: int) -> int:
        ceiling = (
            MAX_BUDGET_FACTOR * self.nominal
            if self.max_per_ff is None
            else self.max_per_ff
        )
        return max(1, min(ceiling, window_len))

    def retired(self, n: int, k: int) -> bool:
        if n < self._min_injections():
            return False
        if self.target_margin <= 0.0:
            return False
        return interval_margin(n, k, self.confidence) <= self.target_margin

    def allocate(
        self, tallies: Mapping[str, Sequence[int]], window_len: int
    ) -> Dict[str, Tuple[int, int]]:
        round_size = self._round_size()
        cap = self._cap(window_len)
        budget = self.nominal * len(tallies)
        spent = sum(rec[0] for rec in tallies.values())
        pool = budget - spent

        allocation: Dict[str, Tuple[int, int]] = {}
        hungry: List[Tuple[float, str, int, int, int]] = []
        for name in sorted(tallies):
            rec = tallies[name]
            n, k = rec[0], rec[1]
            consumed = rec[2] if len(rec) > 2 else rec[0]
            stream_left = window_len - consumed
            if stream_left <= 0 or n >= cap or self.retired(n, k):
                continue
            if n < min(self.nominal, cap):
                grant = min(round_size, min(self.nominal, cap) - n, stream_left)
                allocation[name] = (consumed, consumed + grant)
                pool -= grant
            else:
                # Past the nominal budget: competes for the freed pool,
                # widest interval first (ties broken by name for
                # determinism).
                hungry.append(
                    (
                        -interval_margin(n, k, self.confidence),
                        name,
                        n,
                        consumed,
                        stream_left,
                    )
                )
        for _neg_margin, name, n, consumed, stream_left in sorted(hungry):
            if pool <= 0:
                break
            grant = min(round_size, cap - n, stream_left, pool)
            if grant > 0:
                allocation[name] = (consumed, consumed + grant)
                pool -= grant
        return allocation


def make_policy(spec) -> SamplingPolicy:
    """The policy instance a :class:`~repro.campaigns.spec.CampaignSpec`
    describes (duck-typed: needs ``policy``, ``n_injections`` and
    ``target_margin``)."""
    if spec.policy == "sequential":
        return SequentialWilsonPolicy(
            nominal=spec.n_injections, target_margin=spec.target_margin
        )
    return FlatPolicy(nominal=spec.n_injections)


def policy_signature(spec) -> str:
    """Content address of everything that shapes a policy's decisions.

    Policies are excluded from the campaign's *cache identity* (like the
    backend and the execution scheduler) because per-draw verdicts are
    policy-invariant; the signature instead namespaces the store's
    *policy snapshots*, whose realized per-flip-flop counts do depend on
    the stopping rule and its knobs.
    """
    policy = make_policy(spec)
    payload = {"policy": spec.policy, "nominal": spec.n_injections}
    if isinstance(policy, SequentialWilsonPolicy):
        payload.update(
            target_margin=policy.target_margin,
            confidence=policy.confidence,
            min_injections=policy._min_injections(),
            round_size=policy._round_size(),
            max_budget_factor=MAX_BUDGET_FACTOR
            if policy.max_per_ff is None
            else policy.max_per_ff,
        )
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


class ShardGate:
    """Shard-local online policy view for the scheduler's refill queue.

    Each shard starts from a snapshot of the campaign-wide tallies and
    updates it with its own verdicts as the
    :class:`~repro.faultinjection.scheduler.AdaptiveScheduler` retires
    lanes.  ``admit`` is consulted before a pending injection is loaded
    into a freed lane — the policy's *online decision point*: once a
    flip-flop's interval collapses under the target margin, its remaining
    draws in this shard are skipped (counted in ``skipped``) instead of
    simulated.

    Gating is intentionally shard-local: concurrent shards do not share
    tallies mid-round (the merged view drives the next round's
    allocation), so per-shard decisions stay deterministic for a fixed
    shard partition regardless of worker scheduling.
    """

    def __init__(
        self, policy: SamplingPolicy, tallies: Mapping[str, Sequence[int]]
    ) -> None:
        self.policy = policy
        self.tallies: Dict[str, List[int]] = {
            name: [int(rec[0]), int(rec[1])] for name, rec in tallies.items()
        }
        self.skipped: Dict[str, int] = {}

    def admit(self, name: str) -> bool:
        rec = self.tallies.get(name)
        if rec is not None and self.policy.retired(rec[0], rec[1]):
            self.skipped[name] = self.skipped.get(name, 0) + 1
            return False
        return True

    def record(self, name: str, failed: bool) -> None:
        rec = self.tallies.setdefault(name, [0, 0])
        rec[0] += 1
        if failed:
            rec[1] += 1

    def n_skipped(self) -> int:
        return sum(self.skipped.values())
