"""Campaign work partitioning: schedules, time-slot buckets, shards.

The unit of work is a :class:`Bucket` — all injections sharing one time
slot, simulated together as bit-parallel lanes of a single forward run.
Because every lane of a batch is computed independently (the simulator is
exact per lane and a converged lane can never fail later), per-flip-flop
outcomes do not depend on which process runs which bucket; only the
*schedule* (which flip-flop is struck at which cycle, in which lane order)
matters for bit-exactness.  Both schedules here are therefore computed
centrally and deterministically; the shard partitioner merely distributes
whole buckets across workers.

Two schedules are provided:

``legacy``
    Reproduces :class:`~repro.faultinjection.campaign.StatisticalFaultCampaign`
    draw-for-draw (same RNG consumption order), so a sharded run merges to a
    result bit-identical to the serial reference engine.

``stream``
    A prefix-stable variant: injection draw *j* of a flip-flop depends only
    on *j* and the campaign seed, never on the total budget.  Draw *j* is
    sampled without replacement from the first ``ceil(1.5 * (j + 1))``
    entries of a seeded permutation of the active window, which keeps the
    draws of all flip-flops concentrated on the same ~1.5 n time slots (the
    serial scheduler's density) while allowing a cached *n*-injection
    campaign to be topped up to *m > n* injections by simulating only draws
    ``n .. m-1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .spec import CampaignSpec

__all__ = [
    "Bucket",
    "legacy_buckets",
    "stream_buckets",
    "stream_buckets_ranged",
    "stream_draws",
    "partition_shards",
]


@dataclass(frozen=True)
class Bucket:
    """All injections of one time slot: ``lanes[j]`` is the flip-flop struck
    in bit-parallel lane *j* of the forward run at ``cycle``."""

    cycle: int
    lanes: Tuple[str, ...]

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)


def _to_buckets(table: Dict[int, List[str]]) -> List[Bucket]:
    return [Bucket(cycle, tuple(table[cycle])) for cycle in sorted(table)]


# ------------------------------------------------------------ legacy draws


def legacy_buckets(
    spec: CampaignSpec, window: Sequence[int], ff_names: Sequence[str]
) -> List[Bucket]:
    """The serial reference schedule, bucketed by time slot.

    Consumes ``random.Random(spec.seed)`` in exactly the order
    :meth:`StatisticalFaultCampaign.run` does (global slot pool first, then
    one sample per flip-flop), so the resulting buckets — including lane
    order within each bucket — match the serial engine's.
    """
    n = spec.n_injections
    rng = random.Random(spec.seed)
    n_time_slots = spec.n_time_slots
    if n_time_slots is None:
        n_time_slots = min(len(window), max(n, int(1.5 * n)))
    if n_time_slots < n:
        raise ValueError(
            f"need at least {n} time slots in the active window, got {n_time_slots}"
        )
    slots = sorted(rng.sample(list(window), n_time_slots))
    table: Dict[int, List[str]] = {}
    for name in ff_names:
        for cycle in rng.sample(slots, n):
            table.setdefault(cycle, []).append(name)
    return _to_buckets(table)


# ------------------------------------------------------------ stream draws


def _pool_size(draw: int, window_len: int) -> int:
    """Slot-pool size available to draw *draw* (0-based): ceil(1.5 (draw+1)),
    capped by the window."""
    k = draw + 1
    return min(window_len, k + (k + 1) // 2)


def stream_draws(
    slot_stream: Sequence[int], rng: random.Random, stop: int
) -> List[int]:
    """First *stop* injection cycles of one flip-flop's draw stream.

    Samples without replacement from a growing prefix of ``slot_stream``.
    Prefix-stable by construction: the first *n* draws are identical for
    every ``stop >= n``.
    """
    if stop > len(slot_stream):
        raise ValueError(
            f"active window has only {len(slot_stream)} cycles; cannot draw "
            f"{stop} injections without replacement"
        )
    draws: List[int] = []
    candidates: List[int] = []
    consumed = 0
    for j in range(stop):
        grow = _pool_size(j, len(slot_stream))
        if grow > consumed:
            candidates.extend(slot_stream[consumed:grow])
            consumed = grow
        pick = rng.randrange(len(candidates))
        draws.append(candidates[pick])
        candidates[pick] = candidates[-1]
        candidates.pop()
    return draws


def stream_slot_order(spec: CampaignSpec, window: Sequence[int]) -> List[int]:
    """The campaign family's seeded slot permutation of the active window."""
    stream = list(window)
    random.Random(f"slots:{spec.seed}").shuffle(stream)
    return stream


def stream_buckets(
    spec: CampaignSpec,
    window: Sequence[int],
    ff_names: Sequence[str],
    start: int = 0,
    stop: Optional[int] = None,
) -> List[Bucket]:
    """Buckets for stream-schedule draws ``start .. stop-1`` of every flip-flop.

    ``start > 0`` plans an incremental top-up: only the delta beyond an
    already-cached ``start``-injection snapshot is scheduled.
    """
    if stop is None:
        stop = spec.n_injections
    return stream_buckets_ranged(
        spec, window, {name: (start, stop) for name in ff_names}
    )


def stream_buckets_ranged(
    spec: CampaignSpec,
    window: Sequence[int],
    ranges: Dict[str, Tuple[int, int]],
) -> List[Bucket]:
    """Buckets for per-flip-flop draw ranges ``{ff: (start, stop)}``.

    The generalization a :class:`~repro.campaigns.policy.SamplingPolicy`
    round needs: each flip-flop advances its own prefix-stable draw stream
    independently, so an adaptive allocation (different starts and stops
    per flip-flop) still replays exactly the cycles a flat campaign would
    have drawn for the same indices.
    """
    slot_stream = stream_slot_order(spec, window)
    table: Dict[int, List[str]] = {}
    for name, (start, stop) in ranges.items():
        if not 0 <= start <= stop:
            raise ValueError(f"invalid draw range [{start}, {stop}) for {name!r}")
        rng = random.Random(f"ff:{spec.seed}:{name}")
        for cycle in stream_draws(slot_stream, rng, stop)[start:]:
            table.setdefault(cycle, []).append(name)
    return _to_buckets(table)


# ------------------------------------------------------------- sharding


def partition_shards(buckets: Sequence[Bucket], n_shards: int) -> List[List[Bucket]]:
    """Split buckets into at most *n_shards* balanced, independent shards.

    Deterministic longest-processing-time greedy on lane counts (a bucket's
    simulation cost is roughly proportional to its lanes); within each shard
    buckets stay sorted by cycle so execution order matches the serial
    engine's chunking.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    n_shards = min(n_shards, len(buckets)) or 1
    loads = [0] * n_shards
    shards: List[List[Bucket]] = [[] for _ in range(n_shards)]
    for bucket in sorted(buckets, key=lambda b: (-b.n_lanes, b.cycle)):
        target = min(range(n_shards), key=lambda i: (loads[i], i))
        shards[target].append(bucket)
        loads[target] += bucket.n_lanes
    for shard in shards:
        shard.sort(key=lambda b: b.cycle)
    return [shard for shard in shards if shard]
