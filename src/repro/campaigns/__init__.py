"""Parallel campaign engine: sharded fault injection with a result store.

The paper's cost model treats the flat fault-injection campaign (~1054
flip-flops x 170 injections) as the expensive asset everything else
amortizes.  This subsystem applies the same "pay once, reuse forever"
philosophy to our own compute:

* :mod:`~repro.campaigns.spec` — a self-contained, hashable description of a
  campaign (circuit, workload, criterion, seeds) that worker processes can
  rebuild from scratch;
* :mod:`~repro.campaigns.partition` — deterministic schedules (the legacy
  serial draw order and a prefix-stable stream schedule) bucketed by
  injection time slot, and a balanced shard partitioner;
* :mod:`~repro.campaigns.store` — a content-addressed JSON result store with
  snapshot reuse, incremental top-up and mid-run checkpoints;
* :mod:`~repro.campaigns.policy` — sampling policies: the paper's flat
  protocol and a sequential-Wilson mode with per-flip-flop early stopping
  and budget reallocation;
* :mod:`~repro.campaigns.executor` — the engine: runs shards across worker
  processes (serial fallback included) and merges per-flip-flop results
  bit-exactly;
* :mod:`~repro.campaigns.supervisor` — the fault-tolerant dispatcher under
  the engine: shard deadlines, bounded retry with backoff, dead-worker
  detection and pool rebuild, poison-shard quarantine, and graceful
  degradation to serial execution;
* :mod:`~repro.campaigns.warmstart` — the process-lifetime warm-start
  cache: resident contexts and shard runners that fork-start workers (and
  pool rebuilds) inherit instead of re-deriving, shared-memory golden
  traces, and the packed shard-tally transport.
"""

from .executor import CampaignEngine, EngineReport, RetryPolicy, run_campaign
from .partition import (
    Bucket,
    legacy_buckets,
    partition_shards,
    stream_buckets,
    stream_buckets_ranged,
)
from .policy import (
    DEFAULT_TARGET_MARGIN,
    SAMPLING_POLICIES,
    FlatPolicy,
    SamplingPolicy,
    SequentialWilsonPolicy,
    ShardGate,
    make_policy,
    policy_signature,
)
from .spec import CampaignContext, CampaignSpec, build_context
from .store import CampaignStore
from .supervisor import QuarantinedShard, ShardOutcome, SupervisedPool
from .warmstart import (
    SharedPackedRows,
    active_segment_names,
    release_warm_cache,
    warm_context,
    warm_stats,
)

__all__ = [
    "Bucket",
    "CampaignContext",
    "CampaignEngine",
    "CampaignSpec",
    "CampaignStore",
    "DEFAULT_TARGET_MARGIN",
    "EngineReport",
    "FlatPolicy",
    "QuarantinedShard",
    "RetryPolicy",
    "SAMPLING_POLICIES",
    "SamplingPolicy",
    "SequentialWilsonPolicy",
    "ShardGate",
    "ShardOutcome",
    "SharedPackedRows",
    "SupervisedPool",
    "active_segment_names",
    "build_context",
    "legacy_buckets",
    "make_policy",
    "partition_shards",
    "policy_signature",
    "release_warm_cache",
    "run_campaign",
    "stream_buckets",
    "stream_buckets_ranged",
    "warm_context",
    "warm_stats",
]
