"""Process-lifetime warm-start cache: resident contexts, kernels and traces.

Before this layer, every worker process — and every supervisor pool rebuild,
and every ``maxtasksperchild`` recycle — re-derived the complete execution
environment from the picklable spec: synthesize the netlist, compile the
workload schedule, record the golden trace, code-generate the simulation
kernels.  At xgmac scale that is a second or two of pure redundancy per
worker; at the generated 10k–100k-FF composites it is tens of seconds,
dwarfing the shard work itself.

The fix exploits the fork start method the engine already prefers: build
everything **once in the parent**, keep it in a module-level cache, and let
forked workers inherit it.  Three pieces:

* :func:`warm_context` — one :class:`~repro.campaigns.spec.CampaignContext`
  (netlist + workload + golden trace) per campaign *family*
  (:meth:`CampaignSpec.family_key`), shared by every budget, backend,
  scheduler and policy of that family;
* :func:`ensure_runner` / :func:`resolve_runner` — one fully built shard
  runner (injector + compiled/fused kernels) per
  ``(family, backend, scheduler)``.  The parent calls
  :func:`ensure_runner` before creating a worker pool; ``_worker_init``
  calls :func:`resolve_runner` and only falls back to a cold
  ``build_context`` when the inherited cache has no entry (spawn platforms,
  standalone workers);
* :class:`SharedPackedRows` — the golden trace's big row lists (packed
  flip-flop states, outputs, applied inputs) re-homed into
  ``multiprocessing.shared_memory`` segments.  Fork inheritance alone
  already shares the pages copy-on-write, but CPython reference counting
  dirties every object header it touches, so a plain list of big ints
  slowly gets *copied* into every worker.  A shared-memory block has no
  per-row Python objects: readers reconstruct ints on access, the pages
  stay physically shared across any number of workers and rebuilds, and
  the payload is never pickled.

Lifecycle: segments are **owned by the creating process** — only it may
unlink them.  Worker processes (forked children) inherit the cache and the
mapped segments but their PID differs, so the ``atexit`` hook and
:func:`release_warm_cache` are no-ops there; a chaos ``os._exit`` kill
cannot unlink (or leak) anything because the name was never the child's to
remove.  The parent unlinks every segment at interpreter exit (or earlier
via :func:`release_warm_cache`), so ``/dev/shm`` is left clean after normal
exits, exception exits and kill-ridden chaos trials alike — asserted by
``tests/test_warmstart.py`` and ``tests/test_chaos.py``.

The module also provides the packed shard-tally transport
(:func:`pack_tallies` / :func:`unpack_tallies`): workers return per-flip-flop
counters as two small NumPy blocks (int32 indices, int64 ``[n, k, latency]``
rows) instead of a ``{name: [n, k, lat]}`` dict, shrinking result pickles by
roughly the sum of all flip-flop name strings on wide circuits.
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_telemetry
from ..sim.testbench import GoldenTrace
from .spec import CampaignContext, CampaignSpec, build_context

__all__ = [
    "SharedPackedRows",
    "active_segment_names",
    "ensure_runner",
    "pack_tallies",
    "release_warm_cache",
    "resolve_runner",
    "runner_key",
    "share_golden_trace",
    "unpack_tallies",
    "validate_packed_tally",
    "warm_context",
    "warm_stats",
]

_WORD_BYTES = 8


# ------------------------------------------------------- shared-memory rows


class SharedPackedRows(Sequence):
    """Read-only sequence of packed big-int rows in a shared-memory segment.

    Drop-in replacement for the golden trace's ``List[int]`` fields: rows
    are stored as little-endian 64-bit words in a ``(n_rows, n_words)``
    block and reconstructed to arbitrary-precision ints on ``__getitem__``.
    Hot readers (the injector, the fused kernels) touch a handful of rows
    per simulated cycle, so reconstruction cost is noise next to the gate
    evaluation work — while the backing pages are physically shared by
    every forked worker with zero pickling and zero copy-on-write drift.

    Only the creating process may :meth:`unlink` the segment (enforced via
    the recorded owner PID); forked children inherit a mapped view they can
    read but never tear down, which is exactly the lifecycle a chaos
    ``os._exit`` kill requires.  Pickling degrades to a plain list of ints,
    so any code path that does serialize a trace stays correct.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, n_rows: int, n_words: int, owner_pid: int
    ) -> None:
        self._shm = shm
        self._n_rows = n_rows
        self._n_words = n_words
        self._owner_pid = owner_pid
        self._arr = np.ndarray((n_rows, max(1, n_words)), dtype="<u8", buffer=shm.buf)

    @classmethod
    def pack(cls, rows: Sequence[int]) -> "SharedPackedRows":
        """Copy *rows* (non-negative packed ints) into a fresh segment."""
        n_rows = len(rows)
        n_words = 1
        for row in rows:
            n_words = max(n_words, (row.bit_length() + 63) // 64)
        size = max(_WORD_BYTES, n_rows * n_words * _WORD_BYTES)
        name = f"reprowarm_{os.getpid()}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        view = cls(shm, n_rows, n_words, owner_pid=os.getpid())
        row_bytes = n_words * _WORD_BYTES
        for i, row in enumerate(rows):
            view._arr[i] = np.frombuffer(row.to_bytes(row_bytes, "little"), dtype="<u8")
        return view

    @property
    def segment_name(self) -> str:
        return self._shm.name

    def __len__(self) -> int:
        return self._n_rows

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._n_rows))]
        if index < 0:
            index += self._n_rows
        if not 0 <= index < self._n_rows:
            raise IndexError("row index out of range")
        return int.from_bytes(self._arr[index].tobytes(), "little")

    def __iter__(self) -> Iterator[int]:
        data = self._arr.tobytes()
        row_bytes = self._arr.shape[1] * _WORD_BYTES
        for i in range(self._n_rows):
            yield int.from_bytes(data[i * row_bytes : (i + 1) * row_bytes], "little")

    def to_list(self) -> List[int]:
        return list(self)

    def __reduce__(self):
        # Serialization deflates to a plain list: spawn-start platforms and
        # any stray pickling of a shared trace stay correct, just unshared.
        return (list, (self.to_list(),))

    def unlink(self) -> None:
        """Tear the segment down — creator only; no-op in forked children."""
        if os.getpid() != self._owner_pid:
            return
        self._arr = None  # release the exported buffer so close() can unmap
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a reader still holds a row view
            pass
        try:
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


def share_golden_trace(golden: GoldenTrace) -> List[SharedPackedRows]:
    """Re-home *golden*'s row lists into shared memory, in place.

    Returns the created segments (for lifecycle tracking).  When the trace
    is already shared, or the platform refuses a segment, the trace is left
    as-is and no segments are returned — sharing is an optimization, never
    a correctness requirement.
    """
    if isinstance(golden.ff_state, SharedPackedRows):
        return []
    try:
        segments = [
            SharedPackedRows.pack(golden.ff_state),
            SharedPackedRows.pack(golden.outputs),
            SharedPackedRows.pack(golden.applied_inputs),
        ]
    except OSError:  # pragma: no cover - platform without shared memory
        return []
    golden.ff_state, golden.outputs, golden.applied_inputs = segments
    return segments


# ----------------------------------------------------------- the warm cache


@dataclass
class _WarmFamily:
    """Everything one campaign family keeps resident for the process."""

    context: CampaignContext
    segments: List[SharedPackedRows] = field(default_factory=list)
    build_seconds: float = 0.0
    #: Fully built shard runners, keyed by ``"backend:scheduler"``.
    runners: Dict[str, object] = field(default_factory=dict)


_FAMILIES: Dict[str, _WarmFamily] = {}
_STATS = {"hits": 0, "misses": 0}
_OWNER_PID = os.getpid()


def runner_key(spec: CampaignSpec) -> str:
    """Cache key of a spec's shard runner within its family.

    The family key already covers everything that determines *results*;
    backend and scheduler are excluded there (verdicts are invariant) but
    they change the *built objects* — a fused kernel is not a compiled
    injector — so the runner cache keys on them separately.
    """
    return f"{spec.backend}:{spec.scheduler}"


def warm_context(
    spec: CampaignSpec, context: Optional[CampaignContext] = None
) -> Tuple[CampaignContext, bool]:
    """The process-wide warm context for *spec*'s family.

    Returns ``(context, hit)``.  On a miss the context is built (or adopted
    from *context*, fixing the historical double build when a caller passed
    one in), its golden trace recorded and re-homed into shared memory, and
    the family cached for every later engine, serial runner and forked
    worker in this process.
    """
    key = spec.family_key()
    family = _FAMILIES.get(key)
    if family is not None:
        return family.context, True
    start = time.perf_counter()
    if context is None:
        context = build_context(spec)
    context.ensure_golden()
    segments = share_golden_trace(context.golden)
    _FAMILIES[key] = _WarmFamily(
        context=context,
        segments=segments,
        build_seconds=time.perf_counter() - start,
    )
    return context, False


def ensure_runner(
    spec: CampaignSpec,
    factory: Callable[[CampaignSpec, CampaignContext], object],
    context: Optional[CampaignContext] = None,
) -> Tuple[object, bool, float]:
    """Parent-side warm-up: the resident shard runner for *spec*.

    Returns ``(runner, hit, warmup_seconds)`` and counts the outcome in the
    ``warmstart.{hits,misses}`` telemetry counters.  *factory* builds the
    runner on a miss (injected by the executor — the runner type lives
    there); *context* seeds the family context when the family itself is
    cold.  Workers forked after this call resolve the same runner via
    :func:`resolve_runner` instead of rebuilding, and pool rebuilds re-fork
    from the still-warm parent.
    """
    registry = get_telemetry().registry
    key = spec.family_key()
    rkey = runner_key(spec)
    family = _FAMILIES.get(key)
    if family is not None and rkey in family.runners:
        _STATS["hits"] += 1
        registry.counter("warmstart.hits").inc()
        return family.runners[rkey], True, 0.0
    start = time.perf_counter()
    ctx, _ctx_hit = warm_context(spec, context)
    runner = factory(spec, ctx)
    _FAMILIES[key].runners[rkey] = runner
    warmup = time.perf_counter() - start
    _STATS["misses"] += 1
    registry.counter("warmstart.misses").inc()
    return runner, False, warmup


def resolve_runner(spec: CampaignSpec) -> Optional[object]:
    """Worker-side lookup: the fork-inherited runner for *spec*, if any.

    Never builds anything — a ``None`` means this process did not inherit a
    warm cache (spawn start method, or a standalone worker) and the caller
    must cold-build from the spec.
    """
    family = _FAMILIES.get(spec.family_key())
    if family is None:
        return None
    return family.runners.get(runner_key(spec))


def warm_stats() -> Dict[str, int]:
    """Process-lifetime hit/miss counters (parent-side ensure calls)."""
    return dict(_STATS)


def active_segment_names() -> List[str]:
    """Names of every live shared-memory segment owned by this process."""
    return [
        seg.segment_name
        for family in _FAMILIES.values()
        for seg in family.segments
    ]


def release_warm_cache() -> None:
    """Drop every cached family and unlink its segments (creator only).

    Safe to call from forked children (a no-op there — the segments belong
    to the parent); the test suite calls it between lifecycle assertions
    and an ``atexit`` hook calls it on interpreter shutdown so normal and
    exception exits both leave ``/dev/shm`` clean.
    """
    if os.getpid() == _OWNER_PID:
        for family in _FAMILIES.values():
            for seg in family.segments:
                seg.unlink()
    _FAMILIES.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


atexit.register(release_warm_cache)


# ------------------------------------------------------ packed shard tallies


def pack_tallies(
    ff: Dict[str, List[int]], ff_index: Callable[[str], int]
) -> Dict[str, object]:
    """Encode per-flip-flop ``[n, k, latency]`` counters as NumPy blocks.

    The wire format is ``{"n": count, "idx": int32-bytes, "counts":
    int64-bytes}`` — two dense arrays instead of one dict entry (name
    string, list, three boxed ints) per flip-flop.  Decoding needs the
    netlist's canonical flip-flop order, which only the parent holds; see
    :func:`unpack_tallies`.
    """
    n = len(ff)
    idx = np.empty(n, dtype="<i4")
    counts = np.empty((n, 3), dtype="<i8")
    for j, (name, rec) in enumerate(ff.items()):
        idx[j] = ff_index(name)
        counts[j] = rec
    return {"n": n, "idx": idx.tobytes(), "counts": counts.tobytes()}


def validate_packed_tally(block: object) -> Optional[str]:
    """Shape-check a packed tally block; returns an error string or None."""
    if not isinstance(block, dict):
        return f"expected packed tally dict, got {type(block).__name__}"
    n = block.get("n")
    if not isinstance(n, int) or n < 0:
        return "packed tally has no valid row count"
    idx = block.get("idx")
    counts = block.get("counts")
    if not isinstance(idx, bytes) or len(idx) != n * 4:
        return "packed tally 'idx' block has the wrong size"
    if not isinstance(counts, bytes) or len(counts) != n * 24:
        return "packed tally 'counts' block has the wrong size"
    return None


def unpack_tallies(
    block: Dict[str, object], ff_order: Sequence[str]
) -> Dict[str, List[int]]:
    """Decode :func:`pack_tallies` output back to the ``{name: [n, k, lat]}``
    map the accumulator, store documents and checkpoints are built from."""
    n = int(block["n"])  # type: ignore[arg-type]
    idx = np.frombuffer(block["idx"], dtype="<i4")  # type: ignore[arg-type]
    counts = np.frombuffer(block["counts"], dtype="<i8").reshape(n, 3)  # type: ignore[arg-type]
    out: Dict[str, List[int]] = {}
    for j in range(n):
        out[ff_order[int(idx[j])]] = [
            int(counts[j, 0]),
            int(counts[j, 1]),
            int(counts[j, 2]),
        ]
    return out
