"""Supervised shard dispatch: deadlines, retries, quarantine, degradation.

The campaign engine's unit of distributable work is a shard (a list of
time-slot buckets).  Before this module, shards went through a bare
``Pool.imap_unordered``: one worker segfault, ``os._exit`` or hang killed
(or wedged) the whole campaign, and a worker returning garbage corrupted
the merged counters silently.  :class:`SupervisedPool` replaces that path
with an explicitly supervised dispatcher:

* **per-shard dispatch** — every shard is its own ``apply_async`` call, so
  failures are attributable to a single shard instead of an opaque stream;
* **deadline watchdogs** — a shard that exceeds
  :attr:`RetryPolicy.shard_timeout` is declared hung; the pool (whose
  worker is unrecoverably occupied) is torn down and rebuilt, and the
  shard is retried with backoff;
* **dead-worker detection** — worker processes that exit abnormally
  (non-zero exit code: crash, ``os._exit``, OOM kill) are detected by
  polling, the pool is rebuilt, and the shards that were in flight are
  re-dispatched *one at a time* ("careful mode") so the next failure is
  attributed to exactly one shard.  Clean exits (``maxtasksperchild``
  recycling) are recognized and ignored;
* **bounded retry with exponential backoff** — each attributed failure
  (timeout, worker exception, malformed payload, solo worker loss)
  increments the shard's attempt count and delays its resubmission;
* **poison-shard quarantine** — a shard that fails
  :attr:`RetryPolicy.max_attempts` times is quarantined: the supervisor
  reports it (:class:`QuarantinedShard`) and the campaign *completes*
  without it instead of raising;
* **graceful degradation** — when the pool itself keeps dying
  (:attr:`RetryPolicy.max_pool_rebuilds` exceeded), the supervisor falls
  back to executing the remaining shards serially in-process.

Every decision is surfaced through the current :class:`repro.obs`
registry as ``robustness.*`` counters (retries, timeouts, worker deaths,
pool rebuilds, quarantines, serial fallbacks) plus a
``robustness.backoff_seconds`` histogram, and rolled up into the engine's
:class:`~repro.campaigns.executor.EngineReport`.

Because the supervisor only sees opaque payloads and a worker function,
it is also the seam where the chaos harness plugs in — see
:mod:`repro.verify.chaos`, which injects worker kills, hangs, malformed
payloads and torn store writes *through* this machinery to prove the
recovered result is bit-identical to a fault-free run.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs import get_telemetry

__all__ = [
    "RetryPolicy",
    "QuarantinedShard",
    "ShardOutcome",
    "SupervisedPool",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the supervised dispatcher (see :mod:`docs/robustness.md`).

    Attributes
    ----------
    max_attempts:
        Executions granted to one shard before it is quarantined.
    shard_timeout:
        Deadline in seconds for a single shard execution; ``None`` (the
        default) disables the watchdog.  A timed-out shard costs a pool
        rebuild — the hung worker cannot be reclaimed any other way.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff before retry *k* sleeps
        ``min(backoff_max, backoff_base * backoff_factor**(k-1))`` seconds.
    max_pool_rebuilds:
        Pool teardown/rebuild cycles tolerated before the supervisor
        degrades to in-process serial execution of the remaining shards.
    maxtasksperchild:
        Passed to :class:`multiprocessing.pool.Pool`; bounds per-worker
        lifetime so leaks cannot accumulate across a long campaign.
        Recycled workers exit cleanly and are *not* counted as deaths.
    poll_interval:
        Supervisor polling cadence in seconds.
    """

    max_attempts: int = 3
    shard_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    max_pool_rebuilds: int = 8
    maxtasksperchild: Optional[int] = None
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Delay before re-dispatching a shard that failed *attempt* times."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )


@dataclass
class QuarantinedShard:
    """One shard the campaign gave up on (reported, never raised)."""

    key: int
    reason: str
    attempts: int
    n_buckets: int = 0
    n_lanes: int = 0

    def to_dict(self) -> Dict:
        return {
            "shard": self.key,
            "reason": self.reason,
            "attempts": self.attempts,
            "n_buckets": self.n_buckets,
            "n_lanes": self.n_lanes,
        }


@dataclass
class ShardOutcome:
    """What the supervisor produced for one submitted shard: either a
    validated payload or a quarantine record (never both)."""

    key: int
    payload: Optional[Dict] = None
    quarantine: Optional[QuarantinedShard] = None
    attempts: int = 1


@dataclass
class _Task:
    key: int
    payload: object
    attempts: int = 0
    not_before: float = 0.0


def _task_size(payload: object) -> Tuple[int, int]:
    """(n_buckets, n_lanes) of a shard payload, tolerant of the gated
    ``(shard, tallies)`` wrapping used by the sequential driver."""
    shard = payload
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and isinstance(payload[0], list)
    ):
        shard = payload[0]
    if isinstance(shard, list):
        try:
            return len(shard), sum(len(lanes) for _cycle, lanes in shard)
        except (TypeError, ValueError):
            return len(shard), 0
    return 0, 0


class SupervisedPool:
    """Fault-tolerant replacement for ``Pool.imap_unordered`` over shards.

    Parameters
    ----------
    worker_fn:
        Module-level function executed in pool workers; receives one
        ``(attempt, payload)`` tuple (the attempt ordinal lets the chaos
        harness make deterministic per-attempt fault decisions).
    jobs:
        Worker processes.  ``jobs <= 1`` (or pool degradation) executes
        through *serial_fn* in-process instead.
    initializer / initargs / mp_context:
        Forwarded to :class:`multiprocessing.pool.Pool`.
    retry:
        The :class:`RetryPolicy`; defaults to ``RetryPolicy()``.
    serial_fn:
        ``serial_fn(payload, attempt)`` in-process fallback used when
        ``jobs <= 1`` and after pool degradation.  In-process execution
        enforces no deadlines (nothing can preempt it), but failures are
        still retried/quarantined — only ``Exception`` is caught;
        ``KeyboardInterrupt`` and friends propagate to the engine's
        checkpoint path.
    validate:
        ``validate(payload) -> Optional[str]`` shape check applied to
        every returned payload; a non-``None`` error string counts as a
        failed attempt (the torn-payload defense).

    ``run`` may be called repeatedly (the sequential policy driver reuses
    one supervisor — and its warm worker pool — across rounds); call
    ``shutdown(clean=...)`` exactly once when done: ``clean=True`` lets
    in-flight worker cleanup finish (``close``/``join``), ``clean=False``
    tears the pool down immediately (``terminate``).
    """

    def __init__(
        self,
        worker_fn: Callable,
        *,
        jobs: int,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        retry: Optional[RetryPolicy] = None,
        serial_fn: Optional[Callable[[object, int], Dict]] = None,
        validate: Optional[Callable[[object], Optional[str]]] = None,
        mp_context=None,
        label: str = "shard",
    ) -> None:
        self.worker_fn = worker_fn
        self.jobs = max(1, jobs)
        self.initializer = initializer
        self.initargs = initargs
        self.retry = retry if retry is not None else RetryPolicy()
        self.serial_fn = serial_fn
        self.validate = validate
        self.mp_context = mp_context
        self.label = label
        self._pool = None
        self._procs: List = []
        #: Whether the supervisor has fallen back to in-process execution.
        self.degraded = False
        self.retries = 0
        self.timeouts = 0
        self.worker_deaths = 0
        self.rebuilds = 0
        self.quarantined: List[QuarantinedShard] = []
        if self.jobs <= 1 and serial_fn is None:
            raise ValueError("jobs <= 1 requires a serial_fn")

    # ------------------------------------------------------------ plumbing

    @property
    def _registry(self):
        return get_telemetry().registry

    def _fail(self, task: _Task, reason: str) -> Optional[ShardOutcome]:
        """Account one attributed failure; quarantine or schedule a retry.

        Returns the quarantine outcome when the shard's attempts are
        exhausted, ``None`` when a retry was scheduled (the caller
        re-queues the task).
        """
        task.attempts += 1
        if task.attempts >= self.retry.max_attempts:
            n_buckets, n_lanes = _task_size(task.payload)
            quarantine = QuarantinedShard(
                key=task.key,
                reason=reason,
                attempts=task.attempts,
                n_buckets=n_buckets,
                n_lanes=n_lanes,
            )
            self.quarantined.append(quarantine)
            self._registry.counter("robustness.quarantined_shards").inc()
            return ShardOutcome(
                key=task.key, quarantine=quarantine, attempts=task.attempts
            )
        delay = self.retry.backoff(task.attempts)
        task.not_before = time.monotonic() + delay
        self._registry.histogram("robustness.backoff_seconds").observe(delay)
        return None

    def _count_retry(self, n: int = 1) -> None:
        if n > 0:
            self.retries += n
            self._registry.counter("robustness.retries").inc(n)

    # --------------------------------------------------------- pool lifecycle

    def _build_pool(self):
        import multiprocessing

        ctx = self.mp_context if self.mp_context is not None else multiprocessing
        self._pool = ctx.Pool(
            processes=self.jobs,
            initializer=self.initializer,
            initargs=self.initargs,
            maxtasksperchild=self.retry.maxtasksperchild,
        )
        self._procs = list(getattr(self._pool, "_pool", []))
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._procs = []

    def _abnormal_worker_death(self) -> bool:
        """Did any known worker exit with a non-zero status since last poll?

        Holds references to the worker :class:`Process` objects so a death
        is observed even after the pool's maintenance thread replaces the
        dead slot.  Clean exits (``maxtasksperchild`` recycling, exit code
        0) are expected and ignored.
        """
        if self._pool is None:
            return False
        died = any(
            proc.exitcode not in (None, 0) for proc in self._procs
        )
        # Refresh the watch list so respawned/recycled workers are tracked.
        self._procs = list(getattr(self._pool, "_pool", []))
        return died

    def shutdown(self, clean: bool) -> None:
        """Release the worker pool.

        ``clean=True`` uses ``close()``/``join()`` so workers finish their
        in-flight cleanup (atexit handlers, profiling flushes); the
        exception path uses ``terminate()`` to stop wasting cycles on work
        whose results will be discarded.
        """
        if self._pool is None:
            return
        if clean:
            self._pool.close()
        else:
            self._pool.terminate()
        self._pool.join()
        self._pool = None
        self._procs = []

    # -------------------------------------------------------------- execution

    def run(self, payloads: Sequence[object]) -> Iterator[ShardOutcome]:
        """Execute *payloads*; yield one :class:`ShardOutcome` each, in
        completion order.  Quarantined shards are yielded (with
        ``quarantine`` set) rather than raised."""
        tasks = [_Task(key, payload) for key, payload in enumerate(payloads)]
        if self.jobs <= 1 or self.degraded:
            yield from self._run_serial(tasks)
            return
        yield from self._run_pool(tasks)

    def _run_serial(self, tasks: List[_Task]) -> Iterator[ShardOutcome]:
        assert self.serial_fn is not None
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            wait = task.not_before - time.monotonic()
            if wait > 0:
                time.sleep(wait)
            try:
                payload = self.serial_fn(task.payload, task.attempts + 1)
            except Exception as exc:  # noqa: BLE001 - quarantine, don't die
                outcome = self._fail(task, f"shard raised: {exc!r}")
            else:
                error = self.validate(payload) if self.validate else None
                if error is None:
                    yield ShardOutcome(
                        key=task.key, payload=payload, attempts=task.attempts + 1
                    )
                    continue
                self._registry.counter("robustness.malformed_payloads").inc()
                outcome = self._fail(task, f"malformed payload: {error}")
            if outcome is not None:
                yield outcome
            else:
                self._count_retry()
                queue.append(task)

    def _run_pool(self, tasks: List[_Task]) -> Iterator[ShardOutcome]:
        retry = self.retry
        waiting: deque = deque(tasks)
        #: key -> (task, AsyncResult, deadline or None)
        inflight: Dict[int, Tuple[_Task, object, Optional[float]]] = {}
        #: Shards in flight during an unattributed pool breakage: retried
        #: one at a time so the next failure names a single culprit.
        suspects: Set[int] = set()

        def requeue_inflight(attributed: Optional[_Task], reason: str) -> List[ShardOutcome]:
            """Move in-flight work back to the queue after a breakage."""
            out: List[ShardOutcome] = []
            lost = [task for task, _r, _d in inflight.values()]
            inflight.clear()
            if attributed is None and len(lost) == 1:
                attributed = lost[0]
            for task in lost:
                if task is attributed:
                    continue
                suspects.add(task.key)
                self._count_retry()
                waiting.appendleft(task)
            if attributed is not None:
                outcome = self._fail(attributed, reason)
                if outcome is not None:
                    out.append(outcome)
                else:
                    self._count_retry()
                    suspects.add(attributed.key)
                    waiting.append(attributed)
            return out

        def breakage(attributed: Optional[_Task], reason: str) -> List[ShardOutcome]:
            self.rebuilds += 1
            self._registry.counter("robustness.pool_rebuilds").inc()
            self._teardown_pool()
            out = requeue_inflight(attributed, reason)
            if self.rebuilds > retry.max_pool_rebuilds:
                self.degraded = True
                self._registry.counter("robustness.serial_fallbacks").inc()
            return out

        while waiting or inflight:
            if self.degraded:
                break
            progressed = False

            # ----------------------------------------------------- submit
            capacity = 1 if suspects else self.jobs
            now = time.monotonic()
            if len(inflight) < capacity and waiting:
                # In careful mode only suspects run (solo) until cleared.
                submittable = [
                    t
                    for t in waiting
                    if t.not_before <= now and (not suspects or t.key in suspects)
                ]
                for task in submittable[: capacity - len(inflight)]:
                    waiting.remove(task)
                    if self._pool is None:
                        self._build_pool()
                    try:
                        handle = self._pool.apply_async(
                            self.worker_fn, ((task.attempts + 1, task.payload),)
                        )
                    except Exception as exc:  # pool pipe broken mid-submit
                        inflight[task.key] = (task, None, None)
                        for outcome in breakage(task, f"submit failed: {exc!r}"):
                            yield outcome
                        progressed = True
                        break
                    deadline = (
                        now + retry.shard_timeout
                        if retry.shard_timeout is not None
                        else None
                    )
                    inflight[task.key] = (task, handle, deadline)
                    progressed = True

            # ---------------------------------------------------- collect
            for key in list(inflight):
                task, handle, deadline = inflight[key]
                if handle is None or not handle.ready():
                    continue
                del inflight[key]
                progressed = True
                try:
                    payload = handle.get(0)
                except Exception as exc:  # noqa: BLE001 - worker raised
                    outcome = self._fail(task, f"worker raised: {exc!r}")
                else:
                    error = self.validate(payload) if self.validate else None
                    if error is None:
                        suspects.discard(key)
                        yield ShardOutcome(
                            key=key, payload=payload, attempts=task.attempts + 1
                        )
                        continue
                    self._registry.counter("robustness.malformed_payloads").inc()
                    outcome = self._fail(task, f"malformed payload: {error}")
                if outcome is not None:
                    suspects.discard(key)
                    yield outcome
                else:
                    self._count_retry()
                    waiting.append(task)

            # -------------------------------------------------- watchdogs
            now = time.monotonic()
            timed_out = next(
                (
                    task
                    for task, handle, deadline in inflight.values()
                    if deadline is not None and now > deadline and handle is not None
                ),
                None,
            )
            if timed_out is not None:
                self.timeouts += 1
                self._registry.counter("robustness.shard_timeouts").inc()
                for outcome in breakage(
                    timed_out,
                    f"deadline exceeded ({retry.shard_timeout:.1f}s)",
                ):
                    yield outcome
                progressed = True
            elif inflight and self._abnormal_worker_death():
                self.worker_deaths += 1
                self._registry.counter("robustness.worker_deaths").inc()
                for outcome in breakage(None, "worker died"):
                    yield outcome
                progressed = True

            if not progressed:
                time.sleep(retry.poll_interval)

        if self.degraded and (waiting or inflight):
            # The pool kept dying: finish what's left in-process.
            leftovers = sorted(
                list(waiting) + [task for task, _r, _d in inflight.values()],
                key=lambda t: t.key,
            )
            inflight.clear()
            if self.serial_fn is None:
                for task in leftovers:
                    outcome = self._fail(task, "pool degraded, no serial fallback")
                    if outcome is not None:
                        yield outcome
            else:
                yield from self._run_serial(leftovers)
