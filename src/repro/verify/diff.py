"""Differential verification harness.

Runs every production simulation engine and the independent reference
oracle on identical fuzzed stimulus and reports the *first divergence* as a
(net, cycle, per-backend values) record:

* **lane differential** — each cycle backend
  (:class:`~repro.sim.compiled.CompiledSimulator` and
  :class:`~repro.sim.vectorized.NumPyWideSimulator`) with several
  bit-parallel lanes, each lane carrying a *different* random stimulus
  stream, checked net-by-net and cycle-by-cycle against one
  :class:`~repro.verify.oracle.OracleSimulator` per lane.  This covers both
  the generated gate code and lane independence of the bit-parallel trick;
* **event differential** — :class:`~repro.sim.event.EventDrivenSimulator`
  driven by an explicit clock waveform, compared against the oracle on every
  net whose three-valued value has resolved (X before reset is expected and
  skipped, a resolved-but-different value is a divergence);
* **metamorphic fault-injection check** — every verdict of
  :meth:`~repro.faultinjection.injector.FaultInjector.run_batch` (with its
  lane packing, early retirement and reactive loopback replay) is replayed
  as a single-lane brute-force oracle re-simulation that uses none of those
  optimisations; verdict or error-latency mismatches are divergences.  The
  check runs once per enrolled injector backend — ``compiled``, ``numpy``
  and the ``fused`` sweep kernel — against a *shared* brute-force referee,
  so swapping substrates can never silently change campaign outcomes;
* **scheduled-vs-naive replay** — the adaptive injection scheduler
  (:class:`~repro.faultinjection.scheduler.AdaptiveScheduler`: mixed-cycle
  lane refill, compaction/repack, cone-gated evaluation) runs a
  mixed-cycle request set per enrolled backend and every per-injection
  verdict/latency is compared against a naive per-cycle
  :meth:`~repro.faultinjection.injector.FaultInjector.run_batch` replay of
  the same injections.  Small lane budgets force multi-pass refill and
  repack; ``cone_gating="on"`` exercises the partition-skipping path.

``verify_seed``/``verify_seeds`` tie the three together over fuzzed circuits
and are what ``python -m repro.experiments verify`` and the CI fuzz stage
drive.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..faultinjection.classify import AnyOutputCriterion
from ..faultinjection.faults import InjectionPlan
from ..faultinjection.injector import FaultInjector
from ..netlist.core import Netlist
from ..sim.backend import BACKEND_NAMES, CYCLE_BACKENDS, create_backend
from ..sim.event import EventDrivenSimulator
from ..sim.logic import ONE, X, ZERO
from ..sim.testbench import GoldenTrace, Testbench
from .fuzzer import (
    CLOCK_NET,
    FUZZ_SCALES,
    FuzzSpec,
    generate_netlist,
    generate_schedule,
    generate_testbench,
)
from .oracle import OracleSimulator

__all__ = [
    "Divergence",
    "SeedReport",
    "VerifySummary",
    "run_lane_differential",
    "run_event_differential",
    "run_injector_check",
    "run_scheduler_check",
    "run_fault_model_check",
    "brute_force_seu",
    "brute_force_fault",
    "FAULT_MODEL_CHECK_SPECS",
    "run_generated_check",
    "verify_seed",
    "verify_seeds",
]


@dataclass(frozen=True)
class Divergence:
    """First point where two engines disagree on one fuzzed circuit.

    ``values`` maps an engine label (``"compiled"``, ``"event"``,
    ``"oracle"``, ``"injector"``, ``"bruteforce"``) to the value it saw.
    ``net`` is ``None`` for whole-run disagreements (injection verdicts).
    """

    kind: str
    cycle: int
    net: Optional[str]
    values: Dict[str, object]
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"net {self.net!r} " if self.net else ""
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.values.items()))
        return f"[{self.kind}] {where}cycle {self.cycle}: {pairs} {self.detail}"


@dataclass
class SeedReport:
    """Outcome of all differential checks for one fuzz seed."""

    seed: int
    n_cells: int
    n_ffs: int
    n_cycles: int
    comparisons: int = 0
    injections_checked: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class VerifySummary:
    """Aggregate over a seed sweep (what the CLI and benchmark report)."""

    n_seeds: int = 0
    n_comparisons: int = 0
    n_injections_checked: int = 0
    wall_seconds: float = 0.0
    failing: List[SeedReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failing

    def comparisons_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_comparisons / self.wall_seconds


# ----------------------------------------------------------- lane differential


def _comparable_nets(netlist: Netlist) -> List[str]:
    """Nets worth comparing: everything except the clock roots."""
    clocks = set(netlist.clocks)
    return [name for name in netlist.nets if name not in clocks]


def run_lane_differential(
    netlist: Netlist,
    spec: FuzzSpec,
    n_lanes: int = 3,
    stop_at_first: bool = True,
    backend: str = "compiled",
) -> Tuple[List[Divergence], int]:
    """One cycle backend (one stimulus per lane) vs. one oracle per lane.

    *backend* names any cycle substrate from
    :data:`repro.sim.backend.CYCLE_BACKENDS`.  Returns ``(divergences,
    comparisons)``; with ``stop_at_first`` the run ends at the first
    mismatching (net, cycle, lane).
    """
    schedules = [generate_schedule(netlist, spec, lane=j) for j in range(n_lanes)]
    sim = create_backend(backend, netlist, n_lanes=n_lanes)
    sim.reset()
    oracles = [OracleSimulator(netlist) for _ in range(n_lanes)]
    for oracle in oracles:
        oracle.reset()

    nets = _comparable_nets(netlist)
    input_names = list(netlist.inputs)
    divergences: List[Divergence] = []
    comparisons = 0
    for cycle in range(spec.n_cycles):
        for i, name in enumerate(input_names):
            if name == CLOCK_NET:
                continue
            lanes_value = 0
            for j in range(n_lanes):
                bit = (schedules[j][cycle] >> i) & 1
                lanes_value |= bit << j
                oracles[j].set_input(name, bit)
            sim.set_input_lanes(name, lanes_value)
        sim.eval_comb()
        for oracle in oracles:
            oracle.eval_comb()
        for name in nets:
            packed = sim.get(name)
            for j in range(n_lanes):
                comparisons += 1
                got = (packed >> j) & 1
                want = oracles[j].values[name]
                if got != want:
                    divergences.append(
                        Divergence(
                            kind=f"{backend}-vs-oracle",
                            cycle=cycle,
                            net=name,
                            values={backend: got, "oracle": want},
                            detail=f"lane {j} of {n_lanes}",
                        )
                    )
                    if stop_at_first:
                        return divergences, comparisons
        sim.tick()
        for oracle in oracles:
            oracle.tick()
    return divergences, comparisons


# ---------------------------------------------------------- event differential


def run_event_differential(
    netlist: Netlist,
    spec: FuzzSpec,
    stop_at_first: bool = True,
) -> Tuple[List[Divergence], int]:
    """Event-driven engine vs. oracle on the lane-0 stimulus.

    The event engine starts every net at X (power-up before reset); a net is
    only compared once its value has resolved to 0/1.  A resolved value that
    disagrees with the oracle is a divergence — exact X-propagation can only
    resolve to the value every binary completion agrees on, and the oracle's
    all-zero power-up is one such completion.
    """
    schedule = generate_schedule(netlist, spec, lane=0)
    event = EventDrivenSimulator(netlist)
    oracle = OracleSimulator(netlist)
    oracle.reset()

    # Unit-delay settling needs one time unit per logic level; size the clock
    # period so each half-period covers the deepest cone with slack.
    depth = netlist.stats().max_logic_depth
    half = depth + 6
    period = 2 * half

    nets = _comparable_nets(netlist)
    input_names = [n for n in netlist.inputs if n != CLOCK_NET]
    input_bit = {n: i for i, n in enumerate(netlist.inputs)}
    divergences: List[Divergence] = []
    comparisons = 0
    for cycle in range(spec.n_cycles):
        t_base = cycle * period
        event.schedule(t_base, CLOCK_NET, ZERO)
        for name in input_names:
            bit = (schedule[cycle] >> input_bit[name]) & 1
            event.schedule(t_base, name, ONE if bit else ZERO)
            oracle.set_input(name, bit)
        event.run_until(t_base + half - 1)
        oracle.eval_comb()
        for name in nets:
            resolved = event.values[name]
            if resolved == X:
                continue
            comparisons += 1
            if resolved != oracle.values[name]:
                divergences.append(
                    Divergence(
                        kind="event-vs-oracle",
                        cycle=cycle,
                        net=name,
                        values={"event": resolved, "oracle": oracle.values[name]},
                    )
                )
                if stop_at_first:
                    return divergences, comparisons
        event.schedule(t_base + half, CLOCK_NET, ONE)
        event.run_until(t_base + period - 1)
        oracle.tick()
    return divergences, comparisons


# ------------------------------------------------------- metamorphic injector


def brute_force_fault(
    netlist: Netlist,
    testbench: Testbench,
    golden: GoldenTrace,
    cycle: int,
    plan: InjectionPlan,
) -> Tuple[bool, Optional[int]]:
    """Single-lane oracle re-simulation of one injection plan, no shortcuts.

    Replays the golden open-loop stimulus, feeds loopback targets from the
    *faulty* run's own outputs, applies the plan's state-bit flips once at
    the injection cycle and re-asserts its forced values on every duty-on
    cycle before the combinational settle, and reports ``(failed,
    latency)`` under the any-output-deviation criterion.  Works for every
    registered fault model — the plan *is* the model's entire effect — and
    is the referee for :meth:`FaultInjector.run_batch`.
    """
    oracle = OracleSimulator(netlist)
    out_bit = {n: i for i, n in enumerate(netlist.outputs)}
    taps: List[Tuple[str, str, int, List[int]]] = []
    loop_targets = set()
    for path in testbench.loopbacks:
        for src, dst in zip(path.sources, path.targets):
            slots = [0] * path.delay
            for past in range(cycle - path.delay, cycle):
                if past >= 0:
                    slots[past % path.delay] = (golden.outputs[past] >> out_bit[src]) & 1
            taps.append((src, dst, path.delay, slots))
            loop_targets.add(dst)

    flip_flops = netlist.flip_flops()
    force_nets = [(flip_flops[f].output_net(), v) for f, v in plan.forces]
    oracle.load_ff_state_packed(golden.ff_state[cycle])
    for ff_index in plan.flips:
        oracle.flip_ff(ff_index)
    for c in range(cycle, golden.n_cycles):
        vector = golden.applied_inputs[c]
        for i, name in enumerate(testbench.input_names):
            if name not in loop_targets:
                oracle.set_input(name, (vector >> i) & 1)
        for _src, dst, delay, slots in taps:
            oracle.set_input(dst, slots[c % delay])
        if force_nets and plan.force_active(c - cycle):
            for q_net, v in force_nets:
                oracle.values[q_net] = v
        oracle.eval_comb()
        if oracle.output_vector() != golden.outputs[c]:
            return True, c - cycle
        for src, _dst, delay, slots in taps:
            slots[c % delay] = oracle.values[src]
        oracle.tick()
    return False, None


def brute_force_seu(
    netlist: Netlist,
    testbench: Testbench,
    golden: GoldenTrace,
    cycle: int,
    ff_index: int,
) -> Tuple[bool, Optional[int]]:
    """Single-lane oracle re-simulation of one SEU (one bit flip, no forces)."""
    return brute_force_fault(
        netlist, testbench, golden, cycle, InjectionPlan(flips=(ff_index,))
    )


def run_injector_check(
    netlist: Netlist,
    spec: FuzzSpec,
    n_injection_cycles: int = 3,
    stop_at_first: bool = True,
    backends: Sequence[str] = ("compiled",),
) -> Tuple[List[Divergence], int]:
    """Replay ``FaultInjector.run_batch`` verdicts against brute force.

    Every flip-flop is injected (one lane each) at a handful of cycles drawn
    deterministically from the spec seed; the bit-parallel batch verdict and
    error latency must match the oracle's single-lane re-simulation exactly.
    One ``FaultInjector`` per entry of *backends* runs the same sweeps
    against a **shared** brute-force referee, so enrolling another substrate
    costs one extra batch per cycle, not another oracle re-simulation.
    """
    testbench = generate_testbench(netlist, spec)
    golden = testbench.run_golden()
    criterion = AnyOutputCriterion.all_outputs(netlist)
    injectors = {
        backend: FaultInjector(
            netlist, testbench, golden, criterion, check_interval=4, backend=backend
        )
        for backend in backends
    }

    rng = random.Random(f"inject:{spec.seed}")
    first = min(2, golden.n_cycles - 1)
    candidates = list(range(first, golden.n_cycles))
    cycles = sorted(rng.sample(candidates, min(n_injection_cycles, len(candidates))))
    flip_flops = netlist.flip_flops()
    ff_indices = list(range(len(flip_flops)))

    divergences: List[Divergence] = []
    checked = 0
    for cycle in cycles:
        outcomes = {
            backend: injector.run_batch(cycle, ff_indices)
            for backend, injector in injectors.items()
        }
        for lane, ff_idx in enumerate(ff_indices):
            ref_failed, ref_latency = brute_force_seu(
                netlist, testbench, golden, cycle, ff_idx
            )
            ff_name = flip_flops[ff_idx].name
            for backend, outcome in outcomes.items():
                checked += 1
                label = f"injector[{backend}]"
                batch_failed = bool((outcome.failed_mask >> lane) & 1)
                batch_latency = outcome.latencies.get(lane)
                if batch_failed != ref_failed:
                    divergences.append(
                        Divergence(
                            kind=f"{label}-vs-bruteforce",
                            cycle=cycle,
                            net=ff_name,
                            values={label: batch_failed, "bruteforce": ref_failed},
                            detail="failure verdict mismatch",
                        )
                    )
                elif batch_failed and batch_latency != ref_latency:
                    divergences.append(
                        Divergence(
                            kind=f"{label}-vs-bruteforce",
                            cycle=cycle,
                            net=ff_name,
                            values={label: batch_latency, "bruteforce": ref_latency},
                            detail="error latency mismatch",
                        )
                    )
            if divergences and stop_at_first:
                return divergences, checked
    return divergences, checked


# ------------------------------------------------------ scheduled-vs-naive


def run_scheduler_check(
    netlist: Netlist,
    spec: FuzzSpec,
    n_injection_cycles: int = 3,
    stop_at_first: bool = True,
    backends: Sequence[str] = BACKEND_NAMES,
    max_lanes: int = 5,
) -> Tuple[List[Divergence], int]:
    """Replay :class:`AdaptiveScheduler` verdicts against naive batches.

    Every flip-flop is injected at a handful of seed-drawn cycles.  The
    whole mixed-cycle request set runs through one scheduler per enrolled
    backend — with a deliberately tiny ``max_lanes`` so activation refill,
    deferral across passes and repack compaction all trigger, and with
    ``cone_gating="on"`` on the cycle substrates so partition skipping and
    the gated tick are exercised — and each verdict/latency is compared to
    the naive same-cycle :meth:`FaultInjector.run_batch` replay.

    When the fuzzed testbench has loopback paths, the criterion observes
    only the *non-loopback* outputs.  That keeps divergence that travels
    through a tap invisible until it re-emerges downstream — exactly the
    propagation the cone-gating frontier must follow across loopback
    edges, which an all-outputs criterion (every tap source directly
    observable) could never put under test.
    """
    testbench = generate_testbench(netlist, spec)
    golden = testbench.run_golden()
    loopback_sources = {
        src for path in testbench.loopbacks for src in path.sources
    }
    observed = [n for n in netlist.outputs if n not in loopback_sources]
    criterion = (
        AnyOutputCriterion(nets=observed)
        if observed
        else AnyOutputCriterion.all_outputs(netlist)
    )

    rng = random.Random(f"schedule:{spec.seed}")
    first = min(2, golden.n_cycles - 1)
    candidates = list(range(first, golden.n_cycles))
    cycles = sorted(rng.sample(candidates, min(n_injection_cycles, len(candidates))))
    flip_flops = netlist.flip_flops()
    requests = [
        (cycle, ff_idx) for cycle in cycles for ff_idx in range(len(flip_flops))
    ]
    if not requests:
        return [], 0

    # Naive referee: one run_batch per injection cycle on the compiled
    # substrate (itself cross-checked against brute force elsewhere).
    referee = FaultInjector(
        netlist, testbench, golden, criterion, check_interval=4, backend="compiled"
    )
    expected: List[Tuple[bool, Optional[int]]] = []
    for cycle in cycles:
        outcome = referee.run_batch(cycle, list(range(len(flip_flops))))
        for lane in range(len(flip_flops)):
            failed = bool((outcome.failed_mask >> lane) & 1)
            expected.append((failed, outcome.latencies.get(lane) if failed else None))

    divergences: List[Divergence] = []
    checked = 0
    for backend in backends:
        injector = FaultInjector(
            netlist, testbench, golden, criterion, check_interval=4, backend=backend
        )
        scheduled = injector.run_scheduled(
            requests, max_lanes=max_lanes, cone_gating="on"
        )
        label = f"scheduled[{backend}]"
        for k, (request, want, got) in enumerate(
            zip(requests, expected, scheduled.verdicts)
        ):
            checked += 1
            if got != want:
                cycle, ff_idx = request
                divergences.append(
                    Divergence(
                        kind=f"{label}-vs-naive",
                        cycle=cycle,
                        net=flip_flops[ff_idx].name,
                        values={label: got, "naive": want},
                        detail=f"request {k} verdict/latency mismatch",
                    )
                )
                if stop_at_first:
                    return divergences, checked
    return divergences, checked


# ------------------------------------------------------- generated circuits


def run_generated_check(
    circuit: str = "mesh_tiny",
    n_injection_cycles: int = 2,
    n_ffs_sample: int = 16,
    seed: int = 0,
    stop_at_first: bool = True,
    max_lanes: int = 5,
) -> Tuple[List[Divergence], int]:
    """Differential checks on a generated composite circuit.

    The fuzz harness exercises random small netlists; this enrolls the
    parameterized generator family (:mod:`repro.circuits.generator`) so the
    structures the scale campaigns actually run — systolic mesh cells, deep
    pipelines — get the same treatment.  Two referees on the circuit's own
    registered burst workload:

    1. a seed-drawn sample of flip-flops is injected per cycle through
       :meth:`FaultInjector.run_batch` and each verdict/latency replayed as
       a brute-force oracle re-simulation;
    2. the same request set runs through the adaptive scheduler with a tiny
       lane budget and ``cone_gating="on"``, compared against the naive
       batch verdicts.

    Returns ``(divergences, comparisons)``; deterministic for a given
    ``(circuit, seed)``.
    """
    from ..circuits.library import get_circuit
    from ..circuits.workloads import build_workload_for

    netlist = get_circuit(circuit)
    workload = build_workload_for(circuit, netlist, n_frames=2, gap=8, seed=seed)
    testbench = workload.testbench
    golden = testbench.run_golden()
    criterion = AnyOutputCriterion.all_outputs(netlist)
    injector = FaultInjector(
        netlist, testbench, golden, criterion, check_interval=4, backend="compiled"
    )

    rng = random.Random(f"generated:{circuit}:{seed}")
    first, last = workload.active_window
    last = min(last, golden.n_cycles - 1)
    cycles = sorted(
        rng.sample(range(first, last + 1), min(n_injection_cycles, last + 1 - first))
    )
    flip_flops = netlist.flip_flops()
    ff_indices = sorted(
        rng.sample(range(len(flip_flops)), min(n_ffs_sample, len(flip_flops)))
    )

    divergences: List[Divergence] = []
    checked = 0
    expected: List[Tuple[bool, Optional[int]]] = []
    for cycle in cycles:
        outcome = injector.run_batch(cycle, ff_indices)
        for lane, ff_idx in enumerate(ff_indices):
            failed = bool((outcome.failed_mask >> lane) & 1)
            latency = outcome.latencies.get(lane) if failed else None
            expected.append((failed, latency))
            ref_failed, ref_latency = brute_force_seu(
                netlist, testbench, golden, cycle, ff_idx
            )
            checked += 1
            if (failed, latency) != (ref_failed, ref_latency):
                divergences.append(
                    Divergence(
                        kind="generated-injector-vs-bruteforce",
                        cycle=cycle,
                        net=flip_flops[ff_idx].name,
                        values={
                            "injector": (failed, latency),
                            "bruteforce": (ref_failed, ref_latency),
                        },
                        detail=f"circuit {circuit}",
                    )
                )
                if stop_at_first:
                    return divergences, checked

    requests = [(cycle, ff_idx) for cycle in cycles for ff_idx in ff_indices]
    scheduled = injector.run_scheduled(
        requests, max_lanes=max_lanes, cone_gating="on"
    )
    for k, (request, want, got) in enumerate(
        zip(requests, expected, scheduled.verdicts)
    ):
        checked += 1
        if got != want:
            cycle, ff_idx = request
            divergences.append(
                Divergence(
                    kind="generated-scheduled-vs-naive",
                    cycle=cycle,
                    net=flip_flops[ff_idx].name,
                    values={"scheduled": got, "naive": want},
                    detail=f"circuit {circuit}, request {k}",
                )
            )
            if stop_at_first:
                return divergences, checked
    return divergences, checked


# --------------------------------------------------------- fault-model check

#: Registry spec strings enrolled in the fuzz differential (the plain SEU
#: is already covered exhaustively by :func:`run_injector_check` /
#: :func:`run_scheduler_check`).  Small parameters on purpose: fuzz
#: circuits have a handful of flip-flops, so a size-3 cluster and a
#: period-5 duty cycle already exercise every code path.
FAULT_MODEL_CHECK_SPECS: Tuple[str, ...] = (
    "mbu:size=3,radius=1,seed=0",
    "stuck0",
    "stuck1",
    "intermittent:period=5,on=2,seed=0",
)


def run_fault_model_check(
    netlist: Netlist,
    spec: FuzzSpec,
    model_specs: Sequence[str] = FAULT_MODEL_CHECK_SPECS,
    n_injection_cycles: int = 2,
    stop_at_first: bool = True,
    backends: Sequence[str] = BACKEND_NAMES,
    max_lanes: int = 5,
) -> Tuple[List[Divergence], int]:
    """Replay every registered fault model against the brute-force oracle.

    For each model spec, every flip-flop is injected at a couple of
    seed-drawn cycles.  Three comparisons per injection:

    * the per-backend :meth:`FaultInjector.run_batch` verdict/latency vs. a
      single-lane :func:`brute_force_fault` replay of the *same*
      :class:`~repro.faultinjection.faults.InjectionPlan` (the plan is the
      shared contract — the oracle applies it with none of the engine's
      lane packing, early retirement or force vectorization);
    * cross-backend agreement falls out of the above (all backends are
      diffed against one referee);
    * the adaptive scheduler's mixed-cycle verdicts vs. the brute-force
      reference, with a tiny ``max_lanes`` and ``cone_gating="on"`` so
      refill, repack and the forced-frontier gating all trigger under
      forcing models.
    """
    testbench = generate_testbench(netlist, spec)
    golden = testbench.run_golden()
    criterion = AnyOutputCriterion.all_outputs(netlist)
    flip_flops = netlist.flip_flops()
    ff_indices = list(range(len(flip_flops)))
    if not ff_indices:
        return [], 0

    divergences: List[Divergence] = []
    checked = 0
    for model_spec in model_specs:
        injectors = {
            backend: FaultInjector(
                netlist,
                testbench,
                golden,
                criterion,
                check_interval=4,
                backend=backend,
                fault_model=model_spec,
            )
            for backend in backends
        }
        planner = next(iter(injectors.values()))
        rng = random.Random(f"fault:{model_spec}:{spec.seed}")
        first = min(2, golden.n_cycles - 1)
        candidates = list(range(first, golden.n_cycles))
        cycles = sorted(
            rng.sample(candidates, min(n_injection_cycles, len(candidates)))
        )

        reference: Dict[Tuple[int, int], Tuple[bool, Optional[int]]] = {}
        for cycle in cycles:
            outcomes = {
                backend: injector.run_batch(cycle, ff_indices)
                for backend, injector in injectors.items()
            }
            for lane, ff_idx in enumerate(ff_indices):
                plan = planner.injection_plan(ff_idx, cycle)
                ref_failed, ref_latency = brute_force_fault(
                    netlist, testbench, golden, cycle, plan
                )
                reference[(cycle, ff_idx)] = (ref_failed, ref_latency)
                ff_name = flip_flops[ff_idx].name
                for backend, outcome in outcomes.items():
                    checked += 1
                    label = f"{model_spec}[{backend}]"
                    got_failed = bool((outcome.failed_mask >> lane) & 1)
                    got_latency = outcome.latencies.get(lane)
                    if got_failed != ref_failed or (
                        got_failed and got_latency != ref_latency
                    ):
                        divergences.append(
                            Divergence(
                                kind=f"{label}-vs-bruteforce",
                                cycle=cycle,
                                net=ff_name,
                                values={
                                    label: (got_failed, got_latency),
                                    "bruteforce": (ref_failed, ref_latency),
                                },
                                detail="fault-model verdict/latency mismatch",
                            )
                        )
                        if stop_at_first:
                            return divergences, checked

        requests = [(cycle, ff_idx) for cycle in cycles for ff_idx in ff_indices]
        expected = [reference[r] for r in requests]
        normalized = [
            (failed, latency if failed else None) for failed, latency in expected
        ]
        for backend, injector in injectors.items():
            scheduled = injector.run_scheduled(
                requests, max_lanes=max_lanes, cone_gating="on"
            )
            label = f"{model_spec}-scheduled[{backend}]"
            for k, (request, want, got) in enumerate(
                zip(requests, normalized, scheduled.verdicts)
            ):
                checked += 1
                if got != want:
                    cycle, ff_idx = request
                    divergences.append(
                        Divergence(
                            kind=f"{label}-vs-bruteforce",
                            cycle=cycle,
                            net=flip_flops[ff_idx].name,
                            values={label: got, "bruteforce": want},
                            detail=f"request {k} verdict/latency mismatch",
                        )
                    )
                    if stop_at_first:
                        return divergences, checked
    return divergences, checked


# ------------------------------------------------------------------ seed sweep


def verify_seed(
    spec: FuzzSpec,
    with_event: bool = True,
    with_injector: bool = True,
    with_scheduler: bool = True,
    with_fault_models: bool = True,
    n_lanes: int = 3,
    cycle_backends: Sequence[str] = CYCLE_BACKENDS,
    injector_backends: Sequence[str] = BACKEND_NAMES,
) -> SeedReport:
    """Run every differential check on one fuzzed circuit.

    By default every cycle backend is lane-diffed against the oracle, every
    injector substrate (including the fused sweep kernel) is replayed
    against brute force, the adaptive scheduler's mixed-cycle verdicts
    are replayed against naive batches on every backend, and every
    registered fault model (MBU clusters, stuck-at, intermittent) is
    replayed batch- and scheduler-side against its own brute-force oracle
    (:func:`run_fault_model_check`) — so a fuzz sweep certifies the whole
    pluggable simulation substrate, naive and scheduled, across all fault
    models at once.
    """
    netlist = generate_netlist(spec)
    stats = netlist.stats()
    report = SeedReport(
        seed=spec.seed,
        n_cells=stats.n_cells,
        n_ffs=stats.n_sequential,
        n_cycles=spec.n_cycles,
    )
    for backend in cycle_backends:
        divergences, comparisons = run_lane_differential(
            netlist, spec, n_lanes=n_lanes, backend=backend
        )
        report.divergences.extend(divergences)
        report.comparisons += comparisons
    if with_event:
        divergences, comparisons = run_event_differential(netlist, spec)
        report.divergences.extend(divergences)
        report.comparisons += comparisons
    if with_injector:
        divergences, checked = run_injector_check(
            netlist, spec, backends=injector_backends
        )
        report.divergences.extend(divergences)
        report.injections_checked = checked
    if with_scheduler:
        divergences, checked = run_scheduler_check(
            netlist, spec, backends=injector_backends
        )
        report.divergences.extend(divergences)
        report.injections_checked += checked
    if with_fault_models:
        divergences, checked = run_fault_model_check(
            netlist, spec, backends=injector_backends
        )
        report.divergences.extend(divergences)
        report.injections_checked += checked
    return report


def verify_seeds(
    n_seeds: int,
    scale: str = "mini",
    seed_base: int = 0,
    spec: Optional[FuzzSpec] = None,
    progress=None,
) -> VerifySummary:
    """Sweep ``seed_base .. seed_base + n_seeds - 1`` at the given scale."""
    if spec is None:
        try:
            spec = FUZZ_SCALES[scale]
        except KeyError:
            raise ValueError(
                f"unknown fuzz scale {scale!r}; pick one of {sorted(FUZZ_SCALES)}"
            ) from None
    summary = VerifySummary()
    start = time.monotonic()
    for offset in range(n_seeds):
        seed = seed_base + offset
        report = verify_seed(replace(spec, seed=seed))
        summary.n_seeds += 1
        summary.n_comparisons += report.comparisons
        summary.n_injections_checked += report.injections_checked
        if not report.ok:
            summary.failing.append(report)
        if progress is not None:
            progress(offset + 1, n_seeds, report)
    summary.wall_seconds = time.monotonic() - start
    return summary
