"""Seeded random sequential-netlist fuzzer.

Generates *valid* mapped circuits over the entire default cell library —
every combinational archetype the compiled simulator has a template for,
both flip-flop types and the tie cells — parameterized by gate count, logic
depth, flip-flop count and fan-out.  The same seed always produces the same
netlist, the same stimulus and the same testbench, so any divergence found
by the differential harness (:mod:`repro.verify.diff`) is reproducible from
a single integer.

The module also provides a deterministic structural shrinker: given a
failing netlist and a predicate, it greedily drops primary outputs, rewrites
multi-input gates to buffers and sweeps dead logic until no smaller failing
circuit can be found.  Shrinking explores candidates in a fixed order, so a
given (netlist, predicate) pair always shrinks to the same minimal example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..netlist.cells import DEFAULT_LIBRARY, CellKind
from ..netlist.core import Netlist, NetlistError
from ..sim.testbench import LoopbackPath, ScheduleBuilder, Testbench

__all__ = [
    "FuzzSpec",
    "FUZZ_SCALES",
    "generate_netlist",
    "generate_schedule",
    "generate_testbench",
    "shrink_netlist",
    "rebuild_netlist",
]

#: Clock and reset net names used by every fuzzed design.
CLOCK_NET = "clk"
RESET_NET = "rst_n"


@dataclass(frozen=True)
class FuzzSpec:
    """Knobs of one fuzzed circuit instance.

    Every parameter is drawn deterministically from ``seed``; two specs that
    compare equal generate structurally identical netlists.

    Attributes
    ----------
    seed:
        Master seed; drives netlist topology, stimulus and loopback layout.
    n_gates:
        Number of combinational gate instances.
    n_ffs:
        Number of flip-flops (``>= 1`` so the clock is always recoverable
        from the Verilog round trip).
    n_inputs:
        Number of data primary inputs (clock and reset are extra).
    n_outputs:
        Primary outputs, sampled from gate and flip-flop output nets.
    max_depth:
        Cap on combinational logic depth (gate inputs are only drawn from
        nets shallower than this).
    max_fanout:
        Soft cap on net fan-out; once a net has this many sinks it stops
        being offered as a gate input (hard circuits can still exceed it
        when every candidate is saturated).
    n_ties:
        Number of TIE0/TIE1 constant generators to sprinkle in.
    p_dffr:
        Probability that a flip-flop is a resettable ``DFFR`` (the rest are
        plain ``DFF`` and power up unknown under the event-driven engine).
    p_loopback:
        Probability that the generated testbench closes an output→input
        loopback pipeline (exercises the injector's reactive replay).
    n_cycles:
        Stimulus length for the generated schedule.
    cell_types:
        Optional restriction of the combinational cell mix (library names);
        ``None`` means the entire combinational library.
    """

    seed: int
    n_gates: int = 40
    n_ffs: int = 8
    n_inputs: int = 6
    n_outputs: int = 6
    max_depth: int = 8
    max_fanout: int = 6
    n_ties: int = 2
    p_dffr: float = 0.75
    p_loopback: float = 0.5
    n_cycles: int = 32
    cell_types: Optional[Tuple[str, ...]] = None

    def with_seed(self, seed: int) -> "FuzzSpec":
        return replace(self, seed=seed)


#: Scale presets mirroring the dataset presets of :mod:`repro.data`.
FUZZ_SCALES: Dict[str, FuzzSpec] = {
    "tiny": FuzzSpec(seed=0, n_gates=18, n_ffs=4, n_inputs=4, n_outputs=4,
                     max_depth=5, n_ties=1, n_cycles=20),
    "mini": FuzzSpec(seed=0),
    "full": FuzzSpec(seed=0, n_gates=120, n_ffs=24, n_inputs=10, n_outputs=12,
                     max_depth=12, max_fanout=8, n_ties=3, n_cycles=48),
}


# --------------------------------------------------------------- generation


def _comb_type_names(spec: FuzzSpec) -> List[str]:
    if spec.cell_types is not None:
        names = list(spec.cell_types)
        for name in names:
            ctype = DEFAULT_LIBRARY.get(name)
            if ctype is None or ctype.kind != CellKind.COMBINATIONAL:
                raise ValueError(f"{name!r} is not a combinational library cell")
        return names
    return [ct.name for ct in DEFAULT_LIBRARY.combinational_types()]


def generate_netlist(spec: FuzzSpec) -> Netlist:
    """Generate a valid, validated netlist from *spec* (deterministic)."""
    rng = random.Random(f"netlist:{spec.seed}")
    netlist = Netlist(f"fuzz_{spec.seed}")
    netlist.add_input(CLOCK_NET, is_clock=True)
    netlist.add_input(RESET_NET)

    # Source pool: every net a gate input may legally read, with its depth
    # and current sink count (for the fan-out cap).
    pool: List[str] = []
    depth: Dict[str, int] = {}
    fanout: Dict[str, int] = {}

    def offer(net: str, d: int) -> None:
        pool.append(net)
        depth[net] = d
        fanout[net] = 0

    for i in range(spec.n_inputs):
        name = f"in{i}"
        netlist.add_input(name)
        offer(name, 0)
    # Reset doubles as an ordinary logic input so RN cones get exercised.
    offer(RESET_NET, 0)

    ff_q_nets = [f"q{i}" for i in range(max(1, spec.n_ffs))]
    for q in ff_q_nets:
        offer(q, 0)

    for i in range(spec.n_ties):
        ctype = rng.choice(["TIE0", "TIE1"])
        out = f"t{i}"
        netlist.add_cell(f"tie{i}", ctype, {"Z": out}, drive=1)
        # Netlist.logic_depth() counts a tie as one gate level.
        offer(out, 1)

    def pick_input(limit_depth: int) -> str:
        candidates = [
            n for n in pool
            if depth[n] < limit_depth and fanout[n] < spec.max_fanout
        ]
        if not candidates:
            candidates = [n for n in pool if depth[n] < limit_depth]
        name = rng.choice(candidates)
        fanout[name] += 1
        return name

    comb_names = _comb_type_names(spec)
    for g in range(spec.n_gates):
        ctype = DEFAULT_LIBRARY[rng.choice(comb_names)]
        out = f"g{g}"
        connections = {ctype.output: out}
        in_depth = 0
        for pin in ctype.inputs:
            net = pick_input(spec.max_depth)
            connections[pin] = net
            in_depth = max(in_depth, depth[net])
        drive = rng.choice(DEFAULT_LIBRARY.drive_strengths)
        netlist.add_cell(f"u{g}", ctype.name, connections, drive=drive)
        offer(out, in_depth + 1)

    for i, q in enumerate(ff_q_nets):
        use_reset = rng.random() < spec.p_dffr
        d_net = rng.choice(pool)
        connections = {"D": d_net, "CK": CLOCK_NET, "Q": q}
        if use_reset:
            connections["RN"] = RESET_NET
        netlist.add_cell(f"ff{i}", "DFFR" if use_reset else "DFF", connections)

    # Primary outputs: sample from driven non-input nets (gate + FF outputs).
    candidates = [n for n in pool if not netlist.nets[n].is_input]
    rng.shuffle(candidates)
    n_outputs = max(1, min(spec.n_outputs, len(candidates)))
    for name in sorted(candidates[:n_outputs]):
        netlist.add_output(name)

    netlist.validate()
    return netlist


def generate_schedule(
    netlist: Netlist, spec: FuzzSpec, lane: int = 0
) -> List[int]:
    """Packed per-cycle input vectors: reset phase, then random stimulus.

    ``lane`` decorrelates the streams used for the multi-lane differential
    check while staying a pure function of the spec seed.
    """
    rng = random.Random(f"schedule:{spec.seed}:{lane}")
    builder = ScheduleBuilder(netlist.inputs)
    reset_len = rng.randint(2, 4)
    builder.drive(0, RESET_NET, 0)
    builder.drive(reset_len, RESET_NET, 1)
    data_inputs = [n for n in netlist.inputs if n not in (CLOCK_NET, RESET_NET)]
    for cycle in range(spec.n_cycles):
        for name in data_inputs:
            builder.drive(cycle, name, rng.getrandbits(1))
    return builder.compile(spec.n_cycles)


def generate_testbench(netlist: Netlist, spec: FuzzSpec) -> Testbench:
    """Wrap the fuzzed netlist in a testbench, optionally with loopback."""
    rng = random.Random(f"loopback:{spec.seed}")
    schedule = generate_schedule(netlist, spec)
    loopbacks: List[LoopbackPath] = []
    free_inputs = [n for n in netlist.inputs if n not in (CLOCK_NET, RESET_NET)]
    if netlist.outputs and free_inputs and rng.random() < spec.p_loopback:
        n_bits = rng.randint(1, min(len(netlist.outputs), len(free_inputs), 3))
        sources = tuple(rng.sample(netlist.outputs, n_bits))
        targets = tuple(rng.sample(free_inputs, n_bits))
        loopbacks.append(
            LoopbackPath(sources=sources, targets=targets, delay=rng.randint(1, 3))
        )
    return Testbench(netlist, schedule, loopbacks, name=f"tb_{spec.seed}")


# ---------------------------------------------------------------- shrinking


def rebuild_netlist(
    netlist: Netlist,
    outputs: Optional[Sequence[str]] = None,
    replace_cells: Optional[Dict[str, Tuple[str, Dict[str, str], int]]] = None,
) -> Netlist:
    """Reconstruct *netlist*, keeping only logic reachable from *outputs*.

    ``replace_cells`` maps an instance name to its replacement
    ``(type_name, connections, drive)``.  Dead cells (no path to any kept
    primary output) are swept; unused primary inputs are kept so the port
    interface stays stable.
    """
    outputs = list(netlist.outputs if outputs is None else outputs)
    replace_cells = replace_cells or {}

    cell_shape: Dict[str, Tuple[str, Dict[str, str], int]] = {}
    for cell in netlist.iter_cells():
        if cell.name in replace_cells:
            cell_shape[cell.name] = replace_cells[cell.name]
        else:
            cell_shape[cell.name] = (
                cell.ctype.name, dict(cell.connections), cell.drive
            )

    # Which cell drives each net, under the replacement map.
    driver_of: Dict[str, str] = {}
    for name, (type_name, connections, _drive) in cell_shape.items():
        ctype = netlist.library[type_name]
        driver_of[connections[ctype.output]] = name

    live: set = set()
    stack = [driver_of[o] for o in outputs if o in driver_of]
    while stack:
        cell_name = stack.pop()
        if cell_name in live:
            continue
        live.add(cell_name)
        type_name, connections, _drive = cell_shape[cell_name]
        ctype = netlist.library[type_name]
        for pin in ctype.inputs:
            net = connections.get(pin)
            if net in driver_of:
                stack.append(driver_of[net])

    rebuilt = Netlist(netlist.name, library=netlist.library)
    for name in netlist.inputs:
        rebuilt.add_input(name, is_clock=name in netlist.clocks)
    for name in netlist.cells:  # insertion order keeps determinism
        if name not in live:
            continue
        type_name, connections, drive = cell_shape[name]
        rebuilt.add_cell(name, type_name, connections, drive=drive)
    for name in outputs:
        rebuilt.add_output(name)
    rebuilt.validate()
    return rebuilt


def shrink_netlist(
    netlist: Netlist,
    predicate: Callable[[Netlist], bool],
    max_steps: int = 200,
) -> Netlist:
    """Greedy deterministic shrink: smallest netlist still failing *predicate*.

    *predicate* returns ``True`` while the interesting behaviour (usually "the
    differential harness reports a divergence") persists.  Two reduction
    moves are tried in a fixed order until neither helps:

    1. drop one primary output (and the logic cone now dead);
    2. rewrite one multi-input combinational gate to ``BUF`` of its first
       input (its cone often dies with it).

    Candidates are explored in netlist insertion order, so shrinking is
    fully deterministic for a given input.
    """
    current = rebuild_netlist(netlist)
    if not predicate(current):
        raise ValueError("predicate does not hold on the unshrunk netlist")

    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for out in list(current.outputs):
            if len(current.outputs) <= 1:
                break
            try:
                candidate = rebuild_netlist(
                    current, outputs=[o for o in current.outputs if o != out]
                )
            except NetlistError:
                continue
            steps += 1
            if predicate(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue
        for cell in current.combinational_cells():
            if cell.is_tie or len(cell.ctype.inputs) < 2:
                continue
            buf_conns = {
                "A": cell.connections[cell.ctype.inputs[0]],
                "Z": cell.output_net(),
            }
            try:
                candidate = rebuild_netlist(
                    current, replace_cells={cell.name: ("BUF", buf_conns, 1)}
                )
            except NetlistError:
                continue
            steps += 1
            if len(candidate) < len(current) and predicate(candidate):
                current = candidate
                improved = True
                break
    return current
