"""Deterministic chaos harness: fault injection for the fault injector.

The campaign engine claims to survive worker crashes, hangs, malformed
payloads and torn store writes (see
:mod:`repro.campaigns.supervisor`).  This module turns that claim into an
executable property, exactly the way :mod:`repro.verify.diff` does for
simulation correctness: a seeded :class:`ChaosSpec` decides — purely as a
hash of ``(seed, fault kind, shard fingerprint, attempt)`` — which shard
executions get killed, delayed, hung or corrupted, so every chaotic run is
reproducible bit-for-bit.  The property under test: **a campaign executed
under chaos recovers to a result bit-identical to the fault-free run**,
with the recovery visible in ``robustness.*`` telemetry and the
:class:`~repro.campaigns.executor.EngineReport`.

Pieces:

* :class:`ChaosSpec` — picklable fault plan (rates + seed); travels to
  worker processes inside the pool initializer args;
* :class:`ChaosShardRunner` — wraps the executor's ``_ShardRunner`` and
  applies the plan around each shard execution: ``os._exit`` in pool
  workers (a real SIGKILL-grade death), :class:`ChaosFault` in-process;
* :class:`ChaosCampaignStore` — a :class:`CampaignStore` whose writes are
  deterministically torn mid-document, exercising the store's
  corrupt-file quarantine path;
* :func:`run_chaos_trials` — the suite entry point used by
  ``repro.experiments verify --chaos-trials`` and the CI ``chaos`` job.

Fault decisions depend on the *attempt* ordinal, so a shard killed on its
first dispatch runs clean on the retry (``max_faults_per_site`` bounds how
many attempts a site can sabotage) — except ``poison_cycle``, which marks
one time-slot's shard permanently broken to exercise quarantine.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..campaigns.executor import SHARDS_PER_JOB, CampaignEngine
from ..campaigns.spec import CampaignSpec
from ..campaigns.store import CampaignStore
from ..campaigns.supervisor import RetryPolicy
from ..obs import Telemetry, get_telemetry, use_telemetry

__all__ = [
    "ChaosFault",
    "ChaosSpec",
    "ChaosShardRunner",
    "ChaosCampaignStore",
    "ChaosTrialError",
    "ChaosTrialReport",
    "TRIAL_FLAVORS",
    "run_chaos_trials",
    "shard_fingerprint",
]


class ChaosFault(RuntimeError):
    """An injected (deliberate) failure — never a real engine bug."""


class ChaosTrialError(AssertionError):
    """A chaos trial diverged from its fault-free baseline."""


def shard_fingerprint(buckets: Sequence[Tuple[int, Sequence[str]]]) -> str:
    """Stable identity of a shard's work, independent of dispatch order."""
    digest = hashlib.sha256()
    for cycle, lanes in buckets:
        digest.update(f"{cycle}:{','.join(lanes)};".encode())
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class ChaosSpec:
    """Seeded fault plan.  All rates are per (shard, attempt) site.

    ``max_faults_per_site`` bounds sabotage per site: with the default 1,
    a shard's first attempt may be faulted but its retry runs clean — so
    campaigns always terminate.  ``poison_cycle`` ignores that bound and
    permanently breaks the shard containing that injection time slot,
    forcing the supervisor's quarantine path.
    """

    seed: int = 0
    kill_rate: float = 0.0
    #: Exit status for chaos worker kills — nonzero so the supervisor's
    #: dead-worker watchdog (which ignores clean ``maxtasksperchild``
    #: recycling exits) sees an abnormal death.
    kill_exit_code: int = 17
    hang_rate: float = 0.0
    hang_seconds: float = 20.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.005
    malform_rate: float = 0.0
    torn_write_rate: float = 0.0
    max_faults_per_site: int = 1
    poison_cycle: Optional[int] = None

    def fires(self, kind: str, fingerprint: str, attempt: int, rate: float) -> bool:
        """Deterministic Bernoulli(rate) draw for one fault site."""
        if rate <= 0.0 or attempt > self.max_faults_per_site:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{fingerprint}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < rate

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "kill_rate": self.kill_rate,
            "kill_exit_code": self.kill_exit_code,
            "hang_rate": self.hang_rate,
            "hang_seconds": self.hang_seconds,
            "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
            "malform_rate": self.malform_rate,
            "torn_write_rate": self.torn_write_rate,
            "max_faults_per_site": self.max_faults_per_site,
            "poison_cycle": self.poison_cycle,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ChaosSpec":
        return cls(**payload)


class ChaosShardRunner:
    """Wraps a shard runner and sabotages executions per the chaos plan.

    *in_worker* selects the blast radius: in a pool worker a "kill" is a
    real ``os._exit`` (the process dies mid-task, exactly like a segfault
    or OOM kill) and a "hang" really sleeps; in-process (serial runner,
    degraded-pool fallback) both degrade to :class:`ChaosFault`, because
    killing or wedging the engine itself would take the supervisor with it.
    """

    def __init__(self, inner, chaos: ChaosSpec, in_worker: bool) -> None:
        self.inner = inner
        self.chaos = chaos
        self.in_worker = in_worker

    @property
    def spec(self) -> CampaignSpec:
        # The gated worker entry point reads the spec off the runner to
        # rebuild its sampling policy.
        return self.inner.spec

    def run_shard(
        self,
        buckets: Sequence[Tuple[int, Sequence[str]]],
        gate=None,
        attempt: int = 1,
    ) -> Dict:
        chaos = self.chaos
        registry = get_telemetry().registry
        fingerprint = shard_fingerprint(buckets)
        if chaos.poison_cycle is not None and any(
            cycle == chaos.poison_cycle for cycle, _lanes in buckets
        ):
            registry.counter("chaos.poison_hits").inc()
            raise ChaosFault(
                f"permanently poisoned shard (cycle {chaos.poison_cycle})"
            )
        if chaos.fires("kill", fingerprint, attempt, chaos.kill_rate):
            registry.counter("chaos.kills").inc()
            if self.in_worker:
                os._exit(chaos.kill_exit_code)
            raise ChaosFault("chaos kill (in-process)")
        if chaos.fires("hang", fingerprint, attempt, chaos.hang_rate):
            registry.counter("chaos.hangs").inc()
            if self.in_worker:
                time.sleep(chaos.hang_seconds)
            else:
                raise ChaosFault("chaos hang (in-process)")
        if chaos.fires("delay", fingerprint, attempt, chaos.delay_rate):
            registry.counter("chaos.delays").inc()
            time.sleep(chaos.delay_seconds)
        payload = self.inner.run_shard(buckets, gate=gate, attempt=attempt)
        if chaos.fires("malform", fingerprint, attempt, chaos.malform_rate):
            registry.counter("chaos.malformed").inc()
            return {"ff": "<<chaos: torn payload>>", "chaos": True}
        return payload


class ChaosCampaignStore(CampaignStore):
    """Store whose Nth write of a family may be torn mid-document.

    A torn write bypasses the durable tmp+fsync+replace path and leaves
    *half* the serialized JSON at the final location — the on-disk state a
    hard crash could produce on a store without atomic writes.  The next
    ``_read`` must quarantine the damaged file (``*.corrupt`` +
    ``store.corrupt_files``) and recompute, never crash or serve garbage.
    """

    def __init__(self, root: Path, chaos: ChaosSpec) -> None:
        super().__init__(root)
        self.chaos = chaos
        self._write_ordinals: Dict[str, int] = {}

    def _write(self, spec: CampaignSpec, doc: Dict) -> None:
        path = self.path_for(spec)
        ordinal = self._write_ordinals.get(path.name, 0) + 1
        self._write_ordinals[path.name] = ordinal
        if self.chaos.fires("torn", path.name, ordinal, self.chaos.torn_write_rate):
            get_telemetry().registry.counter("chaos.torn_writes").inc()
            self.root.mkdir(parents=True, exist_ok=True)
            text = json.dumps(doc)
            path.write_text(text[: len(text) // 2])
            return
        super()._write(spec, doc)


# ------------------------------------------------------------------ trials

#: One flavor per trial, cycling: worker kills + malformed payloads +
#: delays (pool rebuild/retry paths), hangs under a shard deadline
#: (timeout watchdog path), and torn store writes (quarantine path).
TRIAL_FLAVORS = ("workers", "timeouts", "torn")


@dataclass
class ChaosTrialReport:
    """Outcome of one chaos trial (all counts from the trial's registry)."""

    trial: int
    flavor: str
    seed: int
    matched: bool
    retries: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0
    corrupt_files: int = 0
    faults: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0


def _mini_spec(seed: int) -> CampaignSpec:
    """A paper-protocol campaign small enough to run many times per trial."""
    return CampaignSpec(
        circuit="xgmac_tiny",
        n_frames=4,
        min_len=2,
        max_len=3,
        gap=12,
        workload_seed=7,
        n_injections=8,
        seed=seed,
        schedule="stream",
    )


def _result_key(result) -> Tuple:
    return tuple(
        sorted(
            (name, rec.n_injections, rec.n_failures, rec.latency_sum)
            for name, rec in result.results.items()
        )
    ) + (result.n_forward_runs, result.total_lane_cycles)


def _counter_value(registry, name: str) -> int:
    counter = registry.counter(name)
    return int(getattr(counter, "value", 0))


def run_chaos_trials(
    n_trials: int = 3,
    jobs: int = 2,
    seed_base: int = 0,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[ChaosTrialReport]:
    """Run *n_trials* seeded chaos trials; raise on the first divergence.

    Each trial runs a fault-free serial baseline, then the same campaign
    under one chaos flavor, and requires the recovered result to be
    bit-identical.  Trials run inside an isolated
    :class:`~repro.obs.Telemetry`; their metrics (including the
    ``robustness.*`` and ``chaos.*`` counters) are absorbed into the
    ambient registry afterwards so ``--metrics-out`` records the whole
    suite's fault accounting.
    """
    ambient = get_telemetry().registry
    reports: List[ChaosTrialReport] = []
    for trial in range(n_trials):
        flavor = TRIAL_FLAVORS[trial % len(TRIAL_FLAVORS)]
        trial_seed = seed_base * 1000 + trial
        spec = _mini_spec(seed=5 + trial_seed)
        start = time.perf_counter()
        with use_telemetry(Telemetry()) as telemetry:
            # The baseline runs serially but over the *same* shard
            # partition as the chaotic jobs-wide run (shard count scales
            # with jobs), so even the execution-detail counters
            # (forward runs, lane-cycles) must match bit-for-bit.
            baseline = CampaignEngine(
                spec, jobs=1, shards_per_job=jobs * SHARDS_PER_JOB
            ).run()
            expected = _result_key(baseline)
            if flavor == "workers":
                chaos = ChaosSpec(
                    seed=trial_seed,
                    kill_rate=0.5,
                    malform_rate=0.4,
                    delay_rate=0.5,
                    delay_seconds=0.002,
                )
                retry = RetryPolicy(
                    max_attempts=4,
                    max_pool_rebuilds=200,
                    backoff_base=0.01,
                    backoff_max=0.05,
                    poll_interval=0.005,
                )
                engine = CampaignEngine(spec, jobs=jobs, chaos=chaos, retry=retry)
                result = engine.run()
            elif flavor == "timeouts":
                chaos = ChaosSpec(
                    seed=trial_seed, hang_rate=0.4, hang_seconds=30.0
                )
                retry = RetryPolicy(
                    max_attempts=4,
                    shard_timeout=1.0,
                    max_pool_rebuilds=200,
                    backoff_base=0.01,
                    backoff_max=0.05,
                    poll_interval=0.005,
                )
                engine = CampaignEngine(spec, jobs=jobs, chaos=chaos, retry=retry)
                result = engine.run()
            else:  # torn store writes
                import tempfile

                chaos = ChaosSpec(seed=trial_seed, torn_write_rate=1.0)
                with tempfile.TemporaryDirectory() as tmp:
                    root = Path(tmp) / "campaigns"
                    # Per-shard checkpoints (interval 0) force several
                    # writes; the first is torn, so the run itself must
                    # quarantine its own damaged checkpoint and carry on.
                    engine = CampaignEngine(
                        spec,
                        jobs=1,
                        shards_per_job=jobs * SHARDS_PER_JOB,
                        store=ChaosCampaignStore(root, chaos),
                        checkpoint_interval=0.0,
                    )
                    result = engine.run()
                    # A clean store over the same directory must serve the
                    # recovered snapshot (or recompute) — never crash on
                    # the leftover damage.
                    rerun = CampaignEngine(
                        spec,
                        jobs=1,
                        shards_per_job=jobs * SHARDS_PER_JOB,
                        store=CampaignStore(root),
                    ).run()
                    if _result_key(rerun) != expected:
                        raise ChaosTrialError(
                            f"trial {trial} ({flavor}): post-damage rerun "
                            f"diverged from the fault-free baseline"
                        )
            matched = _result_key(result) == expected
            registry = telemetry.registry
            report = ChaosTrialReport(
                trial=trial,
                flavor=flavor,
                seed=trial_seed,
                matched=matched,
                retries=engine.last_report.retries,
                pool_rebuilds=engine.last_report.pool_rebuilds,
                quarantined=len(engine.last_report.quarantined_shards),
                corrupt_files=_counter_value(registry, "store.corrupt_files"),
                faults={
                    kind: _counter_value(registry, f"chaos.{kind}")
                    for kind in (
                        "kills",
                        "hangs",
                        "delays",
                        "malformed",
                        "torn_writes",
                        "poison_hits",
                    )
                },
                wall_seconds=time.perf_counter() - start,
            )
            snapshot = registry.snapshot()
        ambient.absorb(snapshot)
        if not report.matched:
            raise ChaosTrialError(
                f"trial {trial} ({flavor}, seed {trial_seed}): chaotic result "
                f"diverged from the fault-free baseline "
                f"(retries={report.retries}, rebuilds={report.pool_rebuilds}, "
                f"quarantined={report.quarantined})"
            )
        if engine.last_report.quarantined_shards:
            raise ChaosTrialError(
                f"trial {trial} ({flavor}): recoverable faults must not "
                f"quarantine shards, got {engine.last_report.quarantined_shards}"
            )
        reports.append(report)
        if progress is not None:
            progress(trial + 1, n_trials)
    return reports
