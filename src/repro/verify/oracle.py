"""Tiny independent reference interpreter for mapped netlists.

This is the referee of the differential harness: a deliberately naive,
one-lane-per-run, two-valued simulator that evaluates cells straight off the
:class:`~repro.netlist.core.Netlist` and shares **no evaluation code** with
either production backend.  In particular it does not use the compiled
simulator's expression templates, the cell library's bit-parallel
``function`` callables or the event engine's ``eval3`` — each cell archetype
is re-specified here from its published truth behaviour.  A bug in any of
those layers therefore cannot cancel out: it shows up as a divergence.

Being naive is the point; correctness properties of the oracle:

* combinational settle is a fix-point sweep over the cells in arbitrary
  order, repeated until nothing changes (no levelization to get wrong);
* flip-flops latch two-phase (all D values are read before any Q is
  written), with the synchronous active-low reset folded in;
* clock nets are held at 0 — a call to :meth:`OracleSimulator.tick` *is*
  the rising edge, matching the cycle-based contract of the compiled engine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence

from ..netlist.core import Cell, Netlist

__all__ = ["OracleSimulator", "ORACLE_FUNCTIONS"]


def _o_inv(a: Sequence[int]) -> int:
    return 0 if a[0] else 1


def _o_buf(a: Sequence[int]) -> int:
    return 1 if a[0] else 0


def _o_and(a: Sequence[int]) -> int:
    return 1 if all(a) else 0


def _o_nand(a: Sequence[int]) -> int:
    return 0 if all(a) else 1


def _o_or(a: Sequence[int]) -> int:
    return 1 if any(a) else 0


def _o_nor(a: Sequence[int]) -> int:
    return 0 if any(a) else 1


def _o_xor2(a: Sequence[int]) -> int:
    return 1 if a[0] != a[1] else 0


def _o_xnor2(a: Sequence[int]) -> int:
    return 1 if a[0] == a[1] else 0


def _o_mux2(a: Sequence[int]) -> int:
    # MUX2(A, B, S) selects B when S else A.
    return a[1] if a[2] else a[0]


def _o_aoi21(a: Sequence[int]) -> int:
    return 0 if ((a[0] and a[1]) or a[2]) else 1


def _o_aoi22(a: Sequence[int]) -> int:
    return 0 if ((a[0] and a[1]) or (a[2] and a[3])) else 1


def _o_oai21(a: Sequence[int]) -> int:
    return 0 if ((a[0] or a[1]) and a[2]) else 1


def _o_oai22(a: Sequence[int]) -> int:
    return 0 if ((a[0] or a[1]) and (a[2] or a[3])) else 1


def _o_tie0(a: Sequence[int]) -> int:
    return 0


def _o_tie1(a: Sequence[int]) -> int:
    return 1


#: Independent scalar truth functions per library cell archetype.
ORACLE_FUNCTIONS: Dict[str, Callable[[Sequence[int]], int]] = {
    "INV": _o_inv,
    "BUF": _o_buf,
    "AND2": _o_and,
    "AND3": _o_and,
    "AND4": _o_and,
    "NAND2": _o_nand,
    "NAND3": _o_nand,
    "NAND4": _o_nand,
    "OR2": _o_or,
    "OR3": _o_or,
    "OR4": _o_or,
    "NOR2": _o_nor,
    "NOR3": _o_nor,
    "NOR4": _o_nor,
    "XOR2": _o_xor2,
    "XNOR2": _o_xnor2,
    "MUX2": _o_mux2,
    "AOI21": _o_aoi21,
    "AOI22": _o_aoi22,
    "OAI21": _o_oai21,
    "OAI22": _o_oai22,
    "TIE0": _o_tie0,
    "TIE1": _o_tie1,
}


class OracleSimulator:
    """One-lane, two-valued reference interpreter over a :class:`Netlist`.

    The external protocol intentionally mirrors
    :class:`~repro.sim.compiled.CompiledSimulator` (``reset`` /
    ``set_input`` / ``eval_comb`` / ``tick``) so the differential harness can
    drive all backends with the same stimulus loop, but the implementation is
    completely separate.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self.values: Dict[str, int] = {name: 0 for name in netlist.nets}
        self._comb: List[Cell] = []
        self._ffs: List[Cell] = []
        for cell in netlist.iter_cells():
            if cell.is_sequential:
                self._ffs.append(cell)
            else:
                fn = ORACLE_FUNCTIONS.get(cell.ctype.name)
                if fn is None:
                    raise ValueError(
                        f"oracle has no reference model for cell {cell.ctype.name!r}"
                    )
                self._comb.append(cell)

    # ---------------------------------------------------------------- control

    def reset(self, ff_value: int = 0) -> None:
        """Zero every net, force flip-flop outputs to *ff_value*, settle."""
        for name in self.values:
            self.values[name] = 0
        bit = 1 if ff_value else 0
        for ff in self._ffs:
            self.values[ff.output_net()] = bit
        self.eval_comb()

    def set_input(self, name: str, bit: int) -> None:
        if not self.netlist.nets[name].is_input:
            raise ValueError(f"{name!r} is not a primary input")
        self.values[name] = 1 if bit else 0

    def apply_inputs(self, assignments: Mapping[str, int]) -> None:
        for name, bit in assignments.items():
            self.set_input(name, bit)

    def eval_comb(self) -> None:
        """Settle combinational logic by sweeping to a fix point."""
        values = self.values
        for clock in self.netlist.clocks:
            values[clock] = 0
        for _sweep in range(len(self._comb) + 1):
            changed = False
            for cell in self._comb:
                fn = ORACLE_FUNCTIONS[cell.ctype.name]
                new = fn([values[n] for n in cell.input_nets()])
                out = cell.connections[cell.ctype.output]
                if values[out] != new:
                    values[out] = new
                    changed = True
            if not changed:
                return
        raise RuntimeError(
            f"oracle failed to reach a fix point on {self.netlist.name!r} "
            "(combinational cycle?)"
        )

    def tick(self) -> None:
        """Rising clock edge: two-phase latch of D (gated by sync RN)."""
        staged: List[int] = []
        for ff in self._ffs:
            d = self.values[ff.connections["D"]]
            rn_net = ff.connections.get("RN")
            if rn_net is not None and self.values[rn_net] == 0:
                d = 0
            staged.append(d)
        for ff, q in zip(self._ffs, staged):
            self.values[ff.output_net()] = q

    # -------------------------------------------------------------- observing

    def get(self, net_name: str) -> int:
        return self.values[net_name]

    def output_vector(self) -> int:
        packed = 0
        for j, name in enumerate(self.netlist.outputs):
            packed |= self.values[name] << j
        return packed

    # --------------------------------------------------------- fault plumbing

    def ff_state_packed(self) -> int:
        """Packed Q state, bit *i* = ``netlist.flip_flops()[i]``."""
        packed = 0
        for i, ff in enumerate(self._ffs):
            packed |= self.values[ff.output_net()] << i
        return packed

    def load_ff_state_packed(self, packed: int) -> None:
        for i, ff in enumerate(self._ffs):
            self.values[ff.output_net()] = (packed >> i) & 1

    def flip_ff(self, index: int) -> None:
        """Invert one stored flip-flop bit (the SEU primitive)."""
        net = self._ffs[index].output_net()
        self.values[net] ^= 1
