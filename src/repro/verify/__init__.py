"""Differential verification: circuit fuzzer, reference oracle, diff harness.

The campaign results rest on the claim that the fast bit-parallel compiled
simulator agrees with an HDL-style reference simulation.  This package turns
that claim into an executable property: seeded random netlists over the
whole cell library (:mod:`~repro.verify.fuzzer`), a tiny independent
interpreter that shares no code with either backend
(:mod:`~repro.verify.oracle`), and a harness that cross-checks all three
engines plus the fault injector and pinpoints the first divergence
(:mod:`~repro.verify.diff`).

The same philosophy is applied to the execution layer itself by
:mod:`~repro.verify.chaos`: a seeded chaos harness that kills, hangs and
corrupts the campaign engine's own workers and store writes, asserting
that the supervised executor recovers to bit-identical results.
"""

from .chaos import (
    ChaosCampaignStore,
    ChaosFault,
    ChaosShardRunner,
    ChaosSpec,
    ChaosTrialError,
    ChaosTrialReport,
    run_chaos_trials,
)
from .diff import (
    FAULT_MODEL_CHECK_SPECS,
    Divergence,
    SeedReport,
    VerifySummary,
    brute_force_fault,
    brute_force_seu,
    run_event_differential,
    run_fault_model_check,
    run_generated_check,
    run_injector_check,
    run_lane_differential,
    run_scheduler_check,
    verify_seed,
    verify_seeds,
)
from .fuzzer import (
    FUZZ_SCALES,
    FuzzSpec,
    generate_netlist,
    generate_schedule,
    generate_testbench,
    rebuild_netlist,
    shrink_netlist,
)
from .oracle import ORACLE_FUNCTIONS, OracleSimulator

__all__ = [
    "ChaosCampaignStore",
    "ChaosFault",
    "ChaosShardRunner",
    "ChaosSpec",
    "ChaosTrialError",
    "ChaosTrialReport",
    "run_chaos_trials",
    "Divergence",
    "SeedReport",
    "VerifySummary",
    "FAULT_MODEL_CHECK_SPECS",
    "brute_force_fault",
    "brute_force_seu",
    "run_event_differential",
    "run_fault_model_check",
    "run_generated_check",
    "run_injector_check",
    "run_lane_differential",
    "run_scheduler_check",
    "verify_seed",
    "verify_seeds",
    "FUZZ_SCALES",
    "FuzzSpec",
    "generate_netlist",
    "generate_schedule",
    "generate_testbench",
    "rebuild_netlist",
    "shrink_netlist",
    "ORACLE_FUNCTIONS",
    "OracleSimulator",
]
