"""From-scratch ML library: the paper's models, metrics and model selection.

Replaces the scikit-learn dependency of the original work with numpy
implementations of every estimator and utility the paper uses (Linear Least
Squares, k-NN, ε-SVR with RBF kernel, stratified k-fold CV, random + grid
search, learning curves, MAE/MAX/RMSE/EV/R²) plus the future-work models
(decision tree, random forest, gradient boosting, MLP).
"""

from .base import BaseEstimator, check_X, check_X_y, clone
from .ensemble import GradientBoostingRegressor, RandomForestRegressor
from .kernels import get_kernel, linear_kernel, polynomial_kernel, rbf_kernel
from .linear import LinearLeastSquares, RidgeRegression
from .metrics import (
    METRIC_FUNCTIONS,
    all_metrics,
    explained_variance,
    max_absolute_error,
    mean_absolute_error,
    r2_score,
    root_mean_squared_error,
)
from .mlp import MLPRegressor
from .model_selection import (
    CrossValidationResult,
    FoldScore,
    KFold,
    LearningCurveResult,
    StratifiedRegressionKFold,
    cross_validate,
    learning_curve,
    train_test_split,
)
from .neighbors import KNeighborsRegressor
from .pipeline import Pipeline, make_pipeline
from .preprocessing import MinMaxScaler, StandardScaler
from .search import (
    Choice,
    GridSearchCV,
    LogUniform,
    ParameterGrid,
    ParameterSampler,
    RandomizedSearchCV,
    SearchResult,
    Uniform,
    random_then_grid_search,
)
from .svr import SVR
from .tree import DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "check_X",
    "check_X_y",
    "clone",
    "GradientBoostingRegressor",
    "RandomForestRegressor",
    "get_kernel",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "LinearLeastSquares",
    "RidgeRegression",
    "METRIC_FUNCTIONS",
    "all_metrics",
    "explained_variance",
    "max_absolute_error",
    "mean_absolute_error",
    "r2_score",
    "root_mean_squared_error",
    "MLPRegressor",
    "CrossValidationResult",
    "FoldScore",
    "KFold",
    "LearningCurveResult",
    "StratifiedRegressionKFold",
    "cross_validate",
    "learning_curve",
    "train_test_split",
    "KNeighborsRegressor",
    "Pipeline",
    "make_pipeline",
    "MinMaxScaler",
    "StandardScaler",
    "Choice",
    "GridSearchCV",
    "LogUniform",
    "ParameterGrid",
    "ParameterSampler",
    "RandomizedSearchCV",
    "SearchResult",
    "Uniform",
    "random_then_grid_search",
    "SVR",
    "DecisionTreeRegressor",
]
