"""Hyperparameter search: random search followed by grid refinement.

The paper's protocol: "first evaluate the model with randomly selected
values for these parameters in a given distribution (random search).
Afterwards a more detailed grid search is performed within the region of the
values obtained by the random search" (citing Bergstra & Bengio).
:func:`random_then_grid_search` packages exactly that two-stage recipe.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .base import BaseEstimator, clone
from .model_selection import StratifiedRegressionKFold, cross_validate

__all__ = [
    "ParameterGrid",
    "ParameterSampler",
    "LogUniform",
    "Uniform",
    "Choice",
    "SearchResult",
    "GridSearchCV",
    "RandomizedSearchCV",
    "random_then_grid_search",
]


class ParameterGrid:
    """Cartesian product of discrete parameter values."""

    def __init__(self, grid: Dict[str, Sequence[Any]]) -> None:
        self.grid = {k: list(v) for k, v in grid.items()}

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def __len__(self) -> int:
        return int(np.prod([len(v) for v in self.grid.values()])) if self.grid else 0


@dataclass(frozen=True)
class Uniform:
    """Continuous uniform distribution over [low, high]."""

    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogUniform:
    """Log-uniform distribution over [low, high] (both positive)."""

    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        return math.exp(rng.uniform(math.log(self.low), math.log(self.high)))


@dataclass(frozen=True)
class Choice:
    """Uniform choice over a discrete set."""

    options: Tuple[Any, ...]

    def sample(self, rng: random.Random) -> Any:
        return rng.choice(self.options)


class ParameterSampler:
    """Draw random parameter dicts from per-parameter distributions."""

    def __init__(self, distributions: Dict[str, Any], n_iter: int, random_state: Optional[int] = None):
        self.distributions = distributions
        self.n_iter = n_iter
        self.random_state = random_state

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        rng = random.Random(self.random_state)
        for _ in range(self.n_iter):
            params: Dict[str, Any] = {}
            for name, dist in sorted(self.distributions.items()):
                if hasattr(dist, "sample"):
                    params[name] = dist.sample(rng)
                else:
                    params[name] = rng.choice(list(dist))
            yield params


@dataclass
class SearchResult:
    """Outcome of a hyperparameter search."""

    best_params: Dict[str, Any]
    best_score: float
    history: List[Tuple[Dict[str, Any], float]] = field(default_factory=list)

    def top(self, k: int = 5) -> List[Tuple[Dict[str, Any], float]]:
        return sorted(self.history, key=lambda item: -item[1])[:k]


class _BaseSearchCV:
    """Shared evaluate-candidates machinery."""

    def __init__(
        self,
        estimator: BaseEstimator,
        cv: Optional[object] = None,
        metric: str = "r2",
        train_size: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> None:
        self.estimator = estimator
        self.cv = cv
        self.metric = metric
        self.train_size = train_size
        self.random_state = random_state

    def _candidates(self) -> Iterator[Dict[str, Any]]:
        raise NotImplementedError

    def fit(self, X, y) -> "SearchResult":
        cv = self.cv if self.cv is not None else StratifiedRegressionKFold(
            n_splits=5, random_state=self.random_state
        )
        history: List[Tuple[Dict[str, Any], float]] = []
        best_params: Optional[Dict[str, Any]] = None
        best_score = -np.inf
        for params in self._candidates():
            model = clone(self.estimator).set_params(**params)
            outcome = cross_validate(
                model,
                X,
                y,
                cv=cv,
                train_size=self.train_size,
                random_state=self.random_state,
            )
            score = outcome.mean_test(self.metric)
            history.append((params, score))
            if score > best_score:
                best_score = score
                best_params = params
        if best_params is None:
            raise ValueError("no candidates evaluated")
        self.result_ = SearchResult(best_params=best_params, best_score=best_score, history=history)
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        return self.result_


class GridSearchCV(_BaseSearchCV):
    """Exhaustive search over a discrete parameter grid."""

    def __init__(self, estimator: BaseEstimator, param_grid: Dict[str, Sequence[Any]], **kwargs):
        super().__init__(estimator, **kwargs)
        self.param_grid = param_grid

    def _candidates(self) -> Iterator[Dict[str, Any]]:
        return iter(ParameterGrid(self.param_grid))


class RandomizedSearchCV(_BaseSearchCV):
    """Random search over parameter distributions."""

    def __init__(
        self,
        estimator: BaseEstimator,
        param_distributions: Dict[str, Any],
        n_iter: int = 20,
        **kwargs,
    ):
        super().__init__(estimator, **kwargs)
        self.param_distributions = param_distributions
        self.n_iter = n_iter

    def _candidates(self) -> Iterator[Dict[str, Any]]:
        return iter(
            ParameterSampler(self.param_distributions, self.n_iter, random_state=self.random_state)
        )


def _refinement_grid(value: Any, span: float = 0.5, points: int = 3) -> List[Any]:
    """Local grid around a numeric value found by random search."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return [value]
    if isinstance(value, int):
        deltas = sorted({max(1, abs(int(round(value * span)))), 1})
        candidates = {value}
        for d in deltas:
            candidates.update({value - d, value + d})
        return sorted(v for v in candidates if v >= 1)
    low = value * (1 - span)
    high = value * (1 + span)
    return list(np.linspace(low, high, points))


def random_then_grid_search(
    estimator: BaseEstimator,
    param_distributions: Dict[str, Any],
    X,
    y,
    n_random: int = 20,
    cv: Optional[object] = None,
    metric: str = "r2",
    train_size: Optional[float] = None,
    random_state: Optional[int] = None,
) -> SearchResult:
    """The paper's two-stage tuning: random search, then a local grid.

    Stage 1 samples *n_random* configurations from the distributions;
    stage 2 builds a small grid around each numeric parameter of the best
    configuration and exhaustively evaluates it.
    """
    randomized = RandomizedSearchCV(
        estimator,
        param_distributions,
        n_iter=n_random,
        cv=cv,
        metric=metric,
        train_size=train_size,
        random_state=random_state,
    )
    stage1 = randomized.fit(X, y)
    grid = {name: _refinement_grid(value) for name, value in stage1.best_params.items()}
    grid_search = GridSearchCV(
        estimator,
        grid,
        cv=cv,
        metric=metric,
        train_size=train_size,
        random_state=random_state,
    )
    stage2 = grid_search.fit(X, y)
    history = stage1.history + stage2.history
    if stage2.best_score >= stage1.best_score:
        return SearchResult(stage2.best_params, stage2.best_score, history)
    return SearchResult(stage1.best_params, stage1.best_score, history)
