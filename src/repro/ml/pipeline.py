"""Transformer + estimator pipelines.

Couples feature scaling to a final regressor so cross-validation fits the
scaler on each fold's training data only (no test-set leakage), exactly as
``sklearn.pipeline.Pipeline`` would.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from .base import BaseEstimator, clone

__all__ = ["Pipeline", "make_pipeline"]


class Pipeline(BaseEstimator):
    """Sequential ``(name, step)`` chain; all but the last must transform.

    Nested parameters use the ``step__param`` convention, so pipelines work
    inside the hyperparameter search.
    """

    def __init__(self, steps: List[Tuple[str, BaseEstimator]]) -> None:
        self.steps = steps

    def _validate(self) -> None:
        if not self.steps:
            raise ValueError("empty pipeline")
        names = [name for name, _ in self.steps]
        if len(set(names)) != len(names):
            raise ValueError("duplicate step names")
        for name, step in self.steps[:-1]:
            if not hasattr(step, "transform"):
                raise TypeError(f"step {name!r} is not a transformer")
        if not hasattr(self.steps[-1][1], "predict"):
            raise TypeError("final step must be a predictor")

    # --------------------------------------------------------------- params

    def get_params(self) -> Dict[str, Any]:
        # Steps are cloned so that clone(pipeline) (which round-trips
        # through get_params) never shares mutable estimators with the
        # original — set_params on a clone must not touch the source.
        params: Dict[str, Any] = {
            "steps": [(name, clone(step)) for name, step in self.steps]
        }
        for name, step in self.steps:
            for key, value in step.get_params().items():
                params[f"{name}__{key}"] = value
        return params

    def set_params(self, **params: Any) -> "Pipeline":
        step_map = dict(self.steps)
        for key, value in params.items():
            if key == "steps":
                self.steps = value
                continue
            if "__" not in key:
                raise ValueError(f"pipeline parameters use 'step__param', got {key!r}")
            step_name, _, param = key.partition("__")
            if step_name not in step_map:
                raise ValueError(f"unknown pipeline step {step_name!r}")
            step_map[step_name].set_params(**{param: value})
        return self

    # ------------------------------------------------------------ fit/pred

    def fit(self, X, y) -> "Pipeline":
        self._validate()
        self.fitted_steps_ = [(name, clone(step)) for name, step in self.steps]
        data = np.asarray(X, dtype=np.float64)
        for name, step in self.fitted_steps_[:-1]:
            data = step.fit_transform(data, y)
        self.fitted_steps_[-1][1].fit(data, y)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("fitted_steps_")
        data = np.asarray(X, dtype=np.float64)
        for name, step in self.fitted_steps_[:-1]:
            data = step.transform(data)
        return self.fitted_steps_[-1][1].predict(data)

    @property
    def final_estimator_(self) -> BaseEstimator:
        self._check_fitted("fitted_steps_")
        return self.fitted_steps_[-1][1]


def make_pipeline(*steps: BaseEstimator) -> Pipeline:
    """Build a pipeline with auto-generated step names."""
    named = [(type(step).__name__.lower(), step) for step in steps]
    seen: Dict[str, int] = {}
    unique: List[Tuple[str, BaseEstimator]] = []
    for name, step in named:
        count = seen.get(name, 0)
        seen[name] = count + 1
        unique.append((f"{name}{count}" if count else name, step))
    return Pipeline(unique)
