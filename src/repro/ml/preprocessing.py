"""Feature scaling transformers.

The feature set mixes counts (fan-out in the hundreds), ratios (@0/@1 in
[0, 1]) and sentinels (-1), so distance- and kernel-based models (k-NN, SVR)
need standardization; these transformers provide it with the familiar
fit/transform protocol.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_X

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance.

    Constant columns are left centred but unscaled (divisor forced to 1) so
    they cannot produce NaNs.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_X(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_X(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_X(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator):
    """Scale features into ``feature_range`` (default [0, 1]).

    Constant columns map to the lower bound.
    """

    def __init__(self, feature_range: tuple = (0.0, 1.0)) -> None:
        self.feature_range = feature_range

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = check_X(X)
        low, high = self.feature_range
        if low >= high:
            raise ValueError("feature_range must be increasing")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        span[span == 0.0] = 1.0
        self.scale_ = (high - low) / span
        self.min_ = low - self.data_min_ * self.scale_
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("scale_")
        X = check_X(X)
        return X * self.scale_ + self.min_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("scale_")
        X = check_X(X)
        return (X - self.min_) / self.scale_
