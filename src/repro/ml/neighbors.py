"""k-Nearest Neighbors regression.

The paper's second model: "a weighted average of the k nearest neighbors is
used to predict the value, where the weight is calculated by the inverse of
the distances and the distance itself can be any metric measure, such as the
Manhattan or Euclidean distance".  The paper's tuned hyperparameters are
``k = 3`` with the Manhattan distance.
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_X, check_X_y

__all__ = ["KNeighborsRegressor"]

_METRICS = ("manhattan", "euclidean", "minkowski", "chebyshev")


class KNeighborsRegressor(BaseEstimator):
    """Distance-weighted k-NN regressor (brute-force, vectorized).

    Parameters
    ----------
    n_neighbors:
        Number of neighbours *k*.
    metric:
        ``"manhattan"``, ``"euclidean"``, ``"chebyshev"`` or
        ``"minkowski"`` (with exponent *p*).
    weights:
        ``"distance"`` — inverse-distance weighting as in the paper (an
        exact feature match predicts that sample's value); or
        ``"uniform"`` — plain average.
    """

    def __init__(
        self,
        n_neighbors: int = 3,
        metric: str = "manhattan",
        weights: str = "distance",
        p: float = 2.0,
    ) -> None:
        self.n_neighbors = n_neighbors
        self.metric = metric
        self.weights = weights
        self.p = p

    def fit(self, X, y) -> "KNeighborsRegressor":
        X, y = check_X_y(X, y)
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if self.metric not in _METRICS:
            raise ValueError(f"unknown metric {self.metric!r}; choose from {_METRICS}")
        if self.weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds training size {X.shape[0]}"
            )
        self.X_ = X
        self.y_ = y
        return self

    def _distances(self, X: np.ndarray) -> np.ndarray:
        """Pairwise distances query x train, shape (n_query, n_train)."""
        diff = X[:, None, :] - self.X_[None, :, :]
        if self.metric == "manhattan":
            return np.abs(diff).sum(axis=2)
        if self.metric == "euclidean":
            return np.sqrt((diff**2).sum(axis=2))
        if self.metric == "chebyshev":
            return np.abs(diff).max(axis=2)
        return (np.abs(diff) ** self.p).sum(axis=2) ** (1.0 / self.p)

    def kneighbors(self, X) -> tuple:
        """Indices and distances of the k nearest training samples."""
        self._check_fitted("X_")
        X = check_X(X)
        distances = self._distances(X)
        k = self.n_neighbors
        idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
        row = np.arange(X.shape[0])[:, None]
        d = distances[row, idx]
        order = np.argsort(d, axis=1)
        return idx[row, order], d[row, order]

    def predict(self, X) -> np.ndarray:
        self._check_fitted("X_")
        idx, dist = self.kneighbors(X)
        neighbor_y = self.y_[idx]
        if self.weights == "uniform":
            return neighbor_y.mean(axis=1)
        predictions = np.empty(idx.shape[0])
        for i in range(idx.shape[0]):
            d = dist[i]
            exact = d == 0.0
            if exact.any():
                # Exact matches dominate (infinite weight).
                predictions[i] = neighbor_y[i][exact].mean()
            else:
                w = 1.0 / d
                predictions[i] = float((w * neighbor_y[i]).sum() / w.sum())
        return predictions
