"""Multi-layer perceptron regressor (Adam-trained).

The last of the paper's future-work models: a small fully-connected network
with ReLU or tanh hidden activations, trained by mini-batch Adam on squared
loss with optional L2 weight decay and early stopping on a validation
split.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .base import BaseEstimator, check_X, check_X_y

__all__ = ["MLPRegressor"]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_grad(z: np.ndarray) -> np.ndarray:
    return (z > 0.0).astype(z.dtype)


def _tanh_grad(z: np.ndarray) -> np.ndarray:
    return 1.0 - np.tanh(z) ** 2


class MLPRegressor(BaseEstimator):
    """Feed-forward network ``in → hidden… → 1`` trained with Adam.

    Parameters
    ----------
    hidden_layer_sizes:
        Widths of the hidden layers.
    activation:
        ``"relu"`` or ``"tanh"``.
    alpha:
        L2 penalty on the weights.
    max_epochs / batch_size / learning_rate:
        Optimization schedule.
    early_stopping / validation_fraction / patience:
        Stop when the validation loss has not improved for *patience*
        epochs, restoring the best weights.
    """

    def __init__(
        self,
        hidden_layer_sizes: Sequence[int] = (64, 32),
        activation: str = "relu",
        alpha: float = 1e-4,
        learning_rate: float = 1e-3,
        max_epochs: int = 300,
        batch_size: int = 32,
        early_stopping: bool = True,
        validation_fraction: float = 0.15,
        patience: int = 25,
        random_state: Optional[int] = None,
    ) -> None:
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.activation = activation
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.early_stopping = early_stopping
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.random_state = random_state

    # ----------------------------------------------------------------- fit

    def fit(self, X, y) -> "MLPRegressor":
        X, y = check_X_y(X, y)
        if self.activation not in ("relu", "tanh"):
            raise ValueError("activation must be 'relu' or 'tanh'")
        rng = np.random.default_rng(self.random_state)
        n, d = X.shape

        if self.early_stopping and n >= 10:
            n_val = max(1, int(round(self.validation_fraction * n)))
            perm = rng.permutation(n)
            val_idx, train_idx = perm[:n_val], perm[n_val:]
            X_train, y_train = X[train_idx], y[train_idx]
            X_val, y_val = X[val_idx], y[val_idx]
        else:
            X_train, y_train = X, y
            X_val = y_val = None

        sizes = [d, *self.hidden_layer_sizes, 1]
        weights: List[np.ndarray] = []
        biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            weights.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))

        m_w = [np.zeros_like(w) for w in weights]
        v_w = [np.zeros_like(w) for w in weights]
        m_b = [np.zeros_like(b) for b in biases]
        v_b = [np.zeros_like(b) for b in biases]
        beta1, beta2, eps_adam = 0.9, 0.999, 1e-8
        lr = self.learning_rate
        step = 0

        best_val = np.inf
        best_state: Optional[Tuple[List[np.ndarray], List[np.ndarray]]] = None
        stale = 0
        self.loss_curve_: List[float] = []

        n_train = X_train.shape[0]
        batch = min(self.batch_size, n_train)
        for epoch in range(self.max_epochs):
            perm = rng.permutation(n_train)
            epoch_loss = 0.0
            for start in range(0, n_train, batch):
                idx = perm[start : start + batch]
                xb, yb = X_train[idx], y_train[idx]
                # Forward
                activations = [xb]
                pre: List[np.ndarray] = []
                h = xb
                for layer, (w, b) in enumerate(zip(weights, biases)):
                    z = h @ w + b
                    pre.append(z)
                    if layer < len(weights) - 1:
                        h = _relu(z) if self.activation == "relu" else np.tanh(z)
                    else:
                        h = z
                    activations.append(h)
                pred = h[:, 0]
                err = pred - yb
                epoch_loss += float((err**2).sum())
                # Backward
                delta = (2.0 / len(idx)) * err[:, None]
                grads_w: List[np.ndarray] = [None] * len(weights)  # type: ignore[list-item]
                grads_b: List[np.ndarray] = [None] * len(weights)  # type: ignore[list-item]
                for layer in reversed(range(len(weights))):
                    grads_w[layer] = activations[layer].T @ delta + 2 * self.alpha * weights[layer]
                    grads_b[layer] = delta.sum(axis=0)
                    if layer > 0:
                        delta = delta @ weights[layer].T
                        grad_fn = _relu_grad if self.activation == "relu" else _tanh_grad
                        delta = delta * grad_fn(pre[layer - 1])
                # Adam update
                step += 1
                correction1 = 1.0 - beta1**step
                correction2 = 1.0 - beta2**step
                for layer in range(len(weights)):
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grads_w[layer]
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grads_w[layer] ** 2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grads_b[layer]
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grads_b[layer] ** 2
                    weights[layer] -= lr * (m_w[layer] / correction1) / (
                        np.sqrt(v_w[layer] / correction2) + eps_adam
                    )
                    biases[layer] -= lr * (m_b[layer] / correction1) / (
                        np.sqrt(v_b[layer] / correction2) + eps_adam
                    )
            self.loss_curve_.append(epoch_loss / n_train)

            if X_val is not None:
                val_pred = self._forward(X_val, weights, biases)
                val_loss = float(np.mean((val_pred - y_val) ** 2))
                if val_loss < best_val - 1e-9:
                    best_val = val_loss
                    best_state = (
                        [w.copy() for w in weights],
                        [b.copy() for b in biases],
                    )
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        break

        if best_state is not None:
            weights, biases = best_state
        self.weights_ = weights
        self.biases_ = biases
        self.n_epochs_ = len(self.loss_curve_)
        return self

    def _forward(self, X: np.ndarray, weights, biases) -> np.ndarray:
        h = X
        for layer, (w, b) in enumerate(zip(weights, biases)):
            z = h @ w + b
            if layer < len(weights) - 1:
                h = _relu(z) if self.activation == "relu" else np.tanh(z)
            else:
                h = z
        return h[:, 0]

    def predict(self, X) -> np.ndarray:
        self._check_fitted("weights_")
        X = check_X(X)
        return self._forward(X, self.weights_, self.biases_)
