"""Regression evaluation metrics (paper section III-C).

Implements exactly the five metrics the paper uses to benchmark its models:
mean absolute error, maximum absolute error, root-mean-square error,
explained variance and the coefficient of determination R².
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "mean_absolute_error",
    "max_absolute_error",
    "root_mean_squared_error",
    "explained_variance",
    "r2_score",
    "all_metrics",
    "METRIC_FUNCTIONS",
]


def _check(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty target arrays")
    return y_true, y_pred


def mean_absolute_error(y_true, y_pred) -> float:
    """MAE — equation (1); closer to zero is better."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def max_absolute_error(y_true, y_pred) -> float:
    """MAX — equation (2); the worst single prediction."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.max(np.abs(y_true - y_pred)))


def root_mean_squared_error(y_true, y_pred) -> float:
    """RMSE — equation (3); weights large errors more heavily than MAE."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def explained_variance(y_true, y_pred) -> float:
    """EV — equation (4); best value 1.

    ``1 - Var(y - yhat) / Var(y)``.  A constant target with perfect
    prediction scores 1; a constant target with error scores 0.
    """
    y_true, y_pred = _check(y_true, y_pred)
    var_y = float(np.var(y_true))
    var_residual = float(np.var(y_true - y_pred))
    if var_y == 0.0:
        return 1.0 if var_residual == 0.0 else 0.0
    return 1.0 - var_residual / var_y


def r2_score(y_true, y_pred) -> float:
    """R² — equation (5); best value 1, can be arbitrarily negative."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


METRIC_FUNCTIONS = {
    "mae": mean_absolute_error,
    "max": max_absolute_error,
    "rmse": root_mean_squared_error,
    "ev": explained_variance,
    "r2": r2_score,
}


def all_metrics(y_true, y_pred) -> Dict[str, float]:
    """All five paper metrics as a dict keyed mae/max/rmse/ev/r2."""
    return {name: fn(y_true, y_pred) for name, fn in METRIC_FUNCTIONS.items()}
