"""Kernel functions for kernel-based models (SVR).

The paper uses the Radial Basis Function kernel, which "performs a
transformation of the input values and maps them to a higher dimensional
space"; linear and polynomial kernels are included for completeness and for
ablation against the RBF results.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["rbf_kernel", "linear_kernel", "polynomial_kernel", "get_kernel"]


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float = 0.1) -> np.ndarray:
    """``K(x, y) = exp(-gamma * ||x - y||²)``, shape (len(X), len(Y))."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    x_sq = (X**2).sum(axis=1)[:, None]
    y_sq = (Y**2).sum(axis=1)[None, :]
    sq_dist = np.maximum(x_sq + y_sq - 2.0 * (X @ Y.T), 0.0)
    return np.exp(-gamma * sq_dist)


def linear_kernel(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Plain inner product kernel."""
    return X @ Y.T


def polynomial_kernel(
    X: np.ndarray, Y: np.ndarray, degree: int = 3, gamma: float = 1.0, coef0: float = 1.0
) -> np.ndarray:
    """``(gamma * <x, y> + coef0) ** degree``."""
    return (gamma * (X @ Y.T) + coef0) ** degree


def get_kernel(name: str, **params) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Resolve a kernel by name with bound parameters."""
    if name == "rbf":
        gamma = params.get("gamma", 0.1)
        return lambda X, Y: rbf_kernel(X, Y, gamma=gamma)
    if name == "linear":
        return linear_kernel
    if name == "poly":
        degree = params.get("degree", 3)
        gamma = params.get("gamma", 1.0)
        coef0 = params.get("coef0", 1.0)
        return lambda X, Y: polynomial_kernel(X, Y, degree=degree, gamma=gamma, coef0=coef0)
    raise ValueError(f"unknown kernel {name!r}")
