"""ε-insensitive Support Vector Regression with an SMO solver.

The paper's third model: "the goal of the Support Vector Regression is to
find a function that deviates from the target value by a value not greater
than ε for each training point, and at the same time is as flat as
possible", with the RBF kernel and tuned hyperparameters C = 3.5,
γ = 0.055, ε = 0.025.

Formulation
-----------
We solve the standard dual in the combined coefficients β = α − α*::

    max_β  −½ βᵀKβ − ε Σ|βᵢ| + Σ yᵢ βᵢ
    s.t.   Σ βᵢ = 0,   −C ≤ βᵢ ≤ C

by Sequential Minimal Optimization: repeatedly pick the pair (i, j) with
the largest first-order violation, and solve the two-variable subproblem
*exactly* — under the equality constraint it is a piecewise quadratic in
βᵢ (breakpoints where βᵢ or βⱼ changes sign), so the maximizer is found by
evaluating each piece's vertex and the breakpoints/box corners.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y
from .kernels import get_kernel

__all__ = ["SVR"]


class SVR(BaseEstimator):
    """ε-SVR with RBF/linear/polynomial kernels.

    Parameters
    ----------
    C:
        Penalty (box) parameter; larger C fits the data more tightly.
    epsilon:
        Half-width of the ε-insensitive tube.
    kernel / gamma / degree / coef0:
        Kernel family and its parameters.
    tol:
        KKT violation tolerance for convergence.
    max_iter:
        Cap on SMO pair updates.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        kernel: str = "rbf",
        gamma: float = 0.1,
        degree: int = 3,
        coef0: float = 1.0,
        tol: float = 1e-4,
        max_iter: int = 20000,
    ) -> None:
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = tol
        self.max_iter = max_iter

    # ------------------------------------------------------------------ fit

    def _kernel_fn(self) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        return get_kernel(
            self.kernel, gamma=self.gamma, degree=self.degree, coef0=self.coef0
        )

    def fit(self, X, y) -> "SVR":
        X, y = check_X_y(X, y)
        if self.C <= 0:
            raise ValueError("C must be positive")
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        n = X.shape[0]
        K = self._kernel_fn()(X, X)
        beta = np.zeros(n)
        # f = K @ beta, maintained incrementally.
        f = np.zeros(n)
        C, eps = float(self.C), float(self.epsilon)

        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            # First-order pair selection: directional derivatives of the
            # concave dual along +e_i (increase beta_i) and -e_j (decrease
            # beta_j).  The |beta| kink is one-sided at zero: moving away
            # from zero always pays +eps.
            r = y - f
            up = np.where(beta >= 0.0, r - eps, r + eps)
            up[beta >= C - 1e-12] = -np.inf
            down = np.where(beta > 0.0, -r + eps, -r - eps)
            down[beta <= -C + 1e-12] = -np.inf
            i = int(np.argmax(up))
            j = int(np.argmax(down))
            violation = up[i] + down[j]
            if violation < self.tol or i == j:
                break
            self._solve_pair(i, j, beta, f, K, y, C, eps)
        self.n_iter_ = n_iter

        support = np.abs(beta) > 1e-10
        self.beta_ = beta
        self.support_ = np.flatnonzero(support)
        self.support_vectors_ = X[support]
        self.dual_coef_ = beta[support]
        self.intercept_ = self._compute_bias(beta, f, y, C, eps)
        return self

    @staticmethod
    def _solve_pair(
        i: int,
        j: int,
        beta: np.ndarray,
        f: np.ndarray,
        K: np.ndarray,
        y: np.ndarray,
        C: float,
        eps: float,
    ) -> None:
        """Exact maximization over (beta_i, beta_j) with beta_i+beta_j fixed."""
        s = beta[i] + beta[j]
        bi_old, bj_old = beta[i], beta[j]
        kii, kjj, kij = K[i, i], K[j, j], K[i, j]
        eta = kii + kjj - 2.0 * kij
        # Residuals of f without the (i, j) contributions.
        fi0 = f[i] - kii * bi_old - kij * bj_old
        fj0 = f[j] - kij * bi_old - kjj * bj_old

        # Objective restricted to t = beta_i (beta_j = s - t), dropping
        # terms independent of t:
        #   g(t) = -0.5*eta*t^2 + (y_i - y_j - fi0 + fj0 + eta_js)*t
        #          - eps*(|t| + |s - t|)   with eta_js = (kjj - kij)*s
        lin = (y[i] - y[j]) - fi0 + fj0 + (kjj - kij) * s
        lo = max(-C, s - C)
        hi = min(C, s + C)

        def g(t: float) -> float:
            return -0.5 * eta * t * t + lin * t - eps * (abs(t) + abs(s - t))

        candidates = [lo, hi]
        for breakpoint in (0.0, s):
            if lo < breakpoint < hi:
                candidates.append(breakpoint)
        # Vertex of each smooth piece: g'(t) = -eta*t + lin - eps*(sgn_i - sgn_j)
        if eta > 1e-12:
            for sign_i in (-1.0, 1.0):
                for sign_j in (-1.0, 1.0):
                    t_star = (lin - eps * (sign_i - sign_j)) / eta
                    if lo <= t_star <= hi:
                        # Keep only if consistent with its sign region
                        # (tolerate boundaries).
                        if sign_i * t_star >= -1e-12 and sign_j * (s - t_star) >= -1e-12:
                            candidates.append(t_star)
        best_t = max(candidates, key=g)
        bi_new = min(max(best_t, lo), hi)
        bj_new = s - bi_new
        di, dj = bi_new - bi_old, bj_new - bj_old
        if di == 0.0 and dj == 0.0:
            return
        beta[i], beta[j] = bi_new, bj_new
        f += di * K[:, i] + dj * K[:, j]

    @staticmethod
    def _compute_bias(beta, f, y, C, eps) -> float:
        """Bias from margin support vectors (0 < |beta| < C) or bound means."""
        margin = (np.abs(beta) > 1e-8) & (np.abs(beta) < C - 1e-8)
        if margin.any():
            b = y[margin] - f[margin] - eps * np.sign(beta[margin])
            return float(np.mean(b))
        # Fall back to the midpoint of the KKT-feasible interval.
        lower, upper = -np.inf, np.inf
        for k in range(len(beta)):
            r = y[k] - f[k]
            if beta[k] < C - 1e-8:
                upper = min(upper, r + eps)
            if beta[k] > -C + 1e-8:
                lower = max(lower, r - eps)
        if np.isfinite(lower) and np.isfinite(upper):
            return float((lower + upper) / 2.0)
        return float(np.mean(y - f))

    # -------------------------------------------------------------- predict

    def predict(self, X) -> np.ndarray:
        self._check_fitted("dual_coef_")
        X = check_X(X)
        if len(self.dual_coef_) == 0:
            return np.full(X.shape[0], self.intercept_)
        K = self._kernel_fn()(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_
