"""Linear models.

:class:`LinearLeastSquares` is the paper's first model: an ordinary
least-squares fit that "expects the target value to be a linear combination
of the input variables" and "aims to minimise the residual sum of squares".
The paper uses it as the baseline that demonstrably *cannot* fit the FDR
problem (Table I).  :class:`RidgeRegression` adds L2 regularization, useful
for the near-collinear feature columns (@0 + @1 = 1).
"""

from __future__ import annotations

import numpy as np

from .base import BaseEstimator, check_X, check_X_y

__all__ = ["LinearLeastSquares", "RidgeRegression"]


class LinearLeastSquares(BaseEstimator):
    """Ordinary least squares: ``y ≈ X @ coef_ + intercept_``.

    Solved with a rank-tolerant SVD least-squares solve, so exactly
    collinear features (which the paper's feature set contains) do not blow
    up the coefficients.
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "LinearLeastSquares":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            design = np.hstack([X, np.ones((X.shape[0], 1))])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        return X @ self.coef_ + self.intercept_


class RidgeRegression(BaseEstimator):
    """L2-regularized least squares (closed form).

    Minimises ``||y - Xw||² + alpha * ||w||²``; the intercept is not
    penalized (handled by centring).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y) -> "RidgeRegression":
        X, y = check_X_y(X, y)
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        gram = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_X(X)
        return X @ self.coef_ + self.intercept_
