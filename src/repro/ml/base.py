"""Estimator base machinery for the from-scratch ML library.

The paper implements its models "using Python's scikit-learn Machine
Learning framework"; scikit-learn is not available in this environment, so
:mod:`repro.ml` reimplements the required estimators, model selection and
metrics on top of numpy.  This module supplies the shared estimator
protocol: constructor-introspected hyperparameters (``get_params`` /
``set_params``), :func:`clone`, and input validation helpers.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = ["BaseEstimator", "clone", "check_X_y", "check_X"]


def check_X(X: Any) -> np.ndarray:
    """Validate and convert a feature matrix to float64 2-D."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got shape {X.shape}")
    if X.shape[0] == 0:
        raise ValueError("empty feature matrix")
    if not np.all(np.isfinite(X)):
        raise ValueError("feature matrix contains NaN or infinity")
    return X


def check_X_y(X: Any, y: Any) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a matching feature matrix / target vector pair."""
    X = check_X(X)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"expected a 1-D target vector, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if not np.all(np.isfinite(y)):
        raise ValueError("target vector contains NaN or infinity")
    return X, y


class BaseEstimator:
    """Common estimator behaviour.

    Subclasses declare hyperparameters exclusively as keyword arguments of
    ``__init__`` and store them under the same attribute names; fitted state
    uses trailing-underscore attributes (``coef_``, ``support_``, …).
    """

    @classmethod
    def _param_names(cls) -> List[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> Dict[str, Any]:
        """Hyperparameters as a dict (fitted state excluded)."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyperparameters; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise RuntimeError(f"{type(self).__name__} is not fitted yet")

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Fresh, unfitted copy with identical hyperparameters.

    Only constructor parameters are passed through; estimators whose
    ``get_params`` exposes extra (e.g. nested ``step__param``) keys, like
    :class:`~repro.ml.pipeline.Pipeline`, are handled correctly.
    """
    names = set(estimator._param_names())
    params = {k: v for k, v in estimator.get_params().items() if k in names}
    return type(estimator)(**params)
