"""Ensemble regressors: random forest and gradient boosting.

Both appear in the paper's future-work list ("Multi-Layer Perception Neural
Networks, or using boosting algorithms"); the experiments package evaluates
them alongside the three paper models on the same dataset.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y
from .tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "GradientBoostingRegressor"]


class RandomForestRegressor(BaseEstimator):
    """Bagged CART trees with per-split feature subsampling.

    Parameters follow the usual conventions; predictions are the mean over
    trees.  ``oob_score_`` (R² on out-of-bag samples) is computed when
    bootstrapping is enabled.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: object = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.trees_: List[DecisionTreeRegressor] = []
        oob_sum = np.zeros(n)
        oob_count = np.zeros(n)
        for t in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31)),
            )
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
                mask = np.ones(n, dtype=bool)
                mask[idx] = False
                if mask.any():
                    oob_sum[mask] += tree.predict(X[mask])
                    oob_count[mask] += 1
            else:
                tree.fit(X, y)
            self.trees_.append(tree)
        importances = np.mean([t.feature_importances_ for t in self.trees_], axis=0)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        if self.bootstrap and (oob_count > 0).sum() >= 2:
            covered = oob_count > 0
            oob_pred = oob_sum[covered] / oob_count[covered]
            ss_res = float(((y[covered] - oob_pred) ** 2).sum())
            ss_tot = float(((y[covered] - y[covered].mean()) ** 2).sum())
            self.oob_score_ = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
        else:
            self.oob_score_ = None
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_X(X)
        return np.mean([tree.predict(X) for tree in self.trees_], axis=0)


class GradientBoostingRegressor(BaseEstimator):
    """Gradient boosting with squared loss and shallow CART base learners.

    Each stage fits a tree to the current residuals and is added with a
    shrinkage factor ``learning_rate``; optional ``subsample < 1`` gives
    stochastic gradient boosting.
    """

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X, y = check_X_y(X, y)
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        rng = np.random.default_rng(self.random_state)
        n = X.shape[0]
        self.init_ = float(y.mean())
        prediction = np.full(n, self.init_)
        self.trees_: List[DecisionTreeRegressor] = []
        self.train_score_: List[float] = []
        for t in range(self.n_estimators):
            residual = y - prediction
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31)),
            )
            if self.subsample < 1.0:
                k = max(2, int(round(self.subsample * n)))
                idx = rng.choice(n, size=k, replace=False)
                tree.fit(X[idx], residual[idx])
            else:
                tree.fit(X, residual)
            prediction = prediction + self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
            self.train_score_.append(float(np.mean((y - prediction) ** 2)))
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("trees_")
        X = check_X(X)
        out = np.full(X.shape[0], self.init_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for tuning plots)."""
        self._check_fitted("trees_")
        X = check_X(X)
        out = np.full(X.shape[0], self.init_)
        for tree in self.trees_:
            out = out + self.learning_rate * tree.predict(X)
            yield out.copy()
