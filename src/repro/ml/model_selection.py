"""Model selection: splits, cross-validation and learning curves.

The paper evaluates every model with a **ten-fold stratified cross
validation** at a given **training size**, and characterizes each model with
a **learning curve** (R² of train and test folds versus training-set size).
For regression targets, stratification follows the standard recipe of
binning the continuous target into quantile bins and stratifying on the bin
label — FDR values cluster at 0 and 1, so this keeps every fold's label
distribution representative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .base import BaseEstimator, check_X_y, clone
from .metrics import METRIC_FUNCTIONS, all_metrics, r2_score

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedRegressionKFold",
    "FoldScore",
    "CrossValidationResult",
    "cross_validate",
    "LearningCurveResult",
    "learning_curve",
]


def train_test_split(
    X,
    y,
    train_size: float = 0.5,
    random_state: Optional[int] = None,
    stratify_bins: int = 0,
):
    """Shuffled (optionally stratified) train/test split.

    Returns ``(X_train, X_test, y_train, y_test, idx_train, idx_test)`` —
    the indices let callers map predictions back to flip-flop names.
    """
    X, y = check_X_y(X, y)
    if not 0.0 < train_size < 1.0:
        raise ValueError("train_size must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    n = X.shape[0]
    if stratify_bins > 1:
        bins = _quantile_bins(y, stratify_bins)
        train_idx: List[int] = []
        test_idx: List[int] = []
        for b in np.unique(bins):
            members = np.flatnonzero(bins == b)
            members = members[rng.permutation(len(members))]
            cut = int(round(train_size * len(members)))
            train_idx.extend(members[:cut])
            test_idx.extend(members[cut:])
        train = np.array(sorted(train_idx))
        test = np.array(sorted(test_idx))
    else:
        perm = rng.permutation(n)
        cut = int(round(train_size * n))
        train, test = np.sort(perm[:cut]), np.sort(perm[cut:])
    if len(train) == 0 or len(test) == 0:
        raise ValueError("split produced an empty side; adjust train_size")
    return X[train], X[test], y[train], y[test], train, test


def _quantile_bins(y: np.ndarray, n_bins: int) -> np.ndarray:
    """Bin a continuous target into (at most) *n_bins* quantile bins."""
    quantiles = np.quantile(y, np.linspace(0, 1, n_bins + 1)[1:-1])
    return np.searchsorted(quantiles, y, side="right")


class KFold:
    """Plain shuffled k-fold splitter."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, random_state: Optional[int] = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for k in range(self.n_splits):
            test = np.sort(folds[k])
            train = np.sort(np.concatenate([folds[i] for i in range(self.n_splits) if i != k]))
            yield train, test


class StratifiedRegressionKFold:
    """K-fold stratified on quantile bins of the regression target.

    This is the "ten fold stratified cross validation" of the paper applied
    to a continuous label: samples are binned by target quantile and each
    bin is distributed round-robin over the folds.
    """

    def __init__(
        self,
        n_splits: int = 10,
        n_bins: int = 10,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.n_bins = n_bins
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y, dtype=np.float64)
        n = len(y)
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        bins = _quantile_bins(y, self.n_bins)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.empty(n, dtype=int)
        cursor = 0
        for b in np.unique(bins):
            members = np.flatnonzero(bins == b)
            if self.shuffle:
                members = members[rng.permutation(len(members))]
            for offset, sample in enumerate(members):
                fold_of[sample] = (cursor + offset) % self.n_splits
            cursor += len(members)
        for k in range(self.n_splits):
            test = np.flatnonzero(fold_of == k)
            train = np.flatnonzero(fold_of != k)
            yield train, test


@dataclass
class FoldScore:
    """Metrics of one CV fold, on both the train and test side."""

    fold: int
    train_metrics: Dict[str, float]
    test_metrics: Dict[str, float]


@dataclass
class CrossValidationResult:
    """Aggregated cross-validation outcome (means over folds)."""

    folds: List[FoldScore]

    def mean_test(self, metric: str) -> float:
        return float(np.mean([f.test_metrics[metric] for f in self.folds]))

    def mean_train(self, metric: str) -> float:
        return float(np.mean([f.train_metrics[metric] for f in self.folds]))

    def std_test(self, metric: str) -> float:
        return float(np.std([f.test_metrics[metric] for f in self.folds]))

    def summary(self) -> Dict[str, float]:
        """Mean test metrics keyed mae/max/rmse/ev/r2."""
        return {m: self.mean_test(m) for m in METRIC_FUNCTIONS}


def cross_validate(
    estimator: BaseEstimator,
    X,
    y,
    cv: Optional[object] = None,
    train_size: Optional[float] = None,
    random_state: Optional[int] = None,
) -> CrossValidationResult:
    """Cross-validate with the paper's protocol.

    ``cv`` defaults to a 10-fold stratified splitter.  When *train_size* is
    given (the paper's Table I uses 50 %), each fold's *training* side is
    subsampled to ``train_size`` of the total dataset before fitting, while
    the fold's test side is evaluated in full — this is how a "training size
    of 50 %" coexists with 10-fold cross-validation.
    """
    X, y = check_X_y(X, y)
    if cv is None:
        cv = StratifiedRegressionKFold(n_splits=10, random_state=random_state)
    rng = np.random.default_rng(random_state)
    folds: List[FoldScore] = []
    for fold_index, (train, test) in enumerate(cv.split(X, y)):
        if train_size is not None:
            target = int(round(train_size * X.shape[0]))
            target = max(2, min(target, len(train)))
            train = rng.choice(train, size=target, replace=False)
        model = clone(estimator)
        model.fit(X[train], y[train])
        train_pred = model.predict(X[train])
        test_pred = model.predict(X[test])
        folds.append(
            FoldScore(
                fold=fold_index,
                train_metrics=all_metrics(y[train], train_pred),
                test_metrics=all_metrics(y[test], test_pred),
            )
        )
    return CrossValidationResult(folds=folds)


@dataclass
class LearningCurveResult:
    """Learning-curve data: R² vs training size (paper Figs. 2b/3b/4b)."""

    train_sizes: List[float]
    train_scores: List[List[float]] = field(default_factory=list)
    test_scores: List[List[float]] = field(default_factory=list)

    def mean_train(self) -> List[float]:
        return [float(np.mean(s)) for s in self.train_scores]

    def mean_test(self) -> List[float]:
        return [float(np.mean(s)) for s in self.test_scores]

    def std_test(self) -> List[float]:
        return [float(np.std(s)) for s in self.test_scores]


def learning_curve(
    estimator: BaseEstimator,
    X,
    y,
    train_sizes: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    cv: Optional[object] = None,
    random_state: Optional[int] = None,
    metric: str = "r2",
) -> LearningCurveResult:
    """Model performance as a function of the data used for training.

    For every requested training size, each CV fold's training side is
    subsampled accordingly; the score (default R², as in the paper's
    figures) is recorded on both the subsampled train set and the fold's
    test set.
    """
    X, y = check_X_y(X, y)
    if cv is None:
        cv = StratifiedRegressionKFold(n_splits=10, random_state=random_state)
    score_fn = METRIC_FUNCTIONS[metric]
    splits = list(cv.split(X, y))
    result = LearningCurveResult(train_sizes=list(train_sizes))
    rng = np.random.default_rng(random_state)
    for size in train_sizes:
        train_scores: List[float] = []
        test_scores: List[float] = []
        for train, test in splits:
            target = int(round(size * X.shape[0]))
            target = max(2, min(target, len(train)))
            subset = rng.choice(train, size=target, replace=False)
            model = clone(estimator)
            model.fit(X[subset], y[subset])
            train_scores.append(score_fn(y[subset], model.predict(X[subset])))
            test_scores.append(score_fn(y[test], model.predict(X[test])))
        result.train_scores.append(train_scores)
        result.test_scores.append(test_scores)
    return result
