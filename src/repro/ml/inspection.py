"""Model inspection: permutation feature importance.

The paper's future work calls for evaluating "the value of each feature …
separately" (and warns about the curse of dimensionality, citing Trunk).
Permutation importance measures exactly that: the drop in a fitted model's
score when one feature column is shuffled, breaking its relationship with
the target while preserving its marginal distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import BaseEstimator, check_X_y
from .metrics import METRIC_FUNCTIONS

__all__ = ["PermutationImportanceResult", "permutation_importance"]


@dataclass
class PermutationImportanceResult:
    """Per-feature score drops (mean and std over repeats)."""

    feature_names: List[str]
    baseline_score: float
    importances_mean: np.ndarray = field(default_factory=lambda: np.empty(0))
    importances_std: np.ndarray = field(default_factory=lambda: np.empty(0))

    def ranking(self) -> List[str]:
        """Feature names ordered from most to least important."""
        order = np.argsort(-self.importances_mean)
        return [self.feature_names[i] for i in order]

    def as_rows(self) -> List[List[object]]:
        """Table rows ``[feature, mean_drop, std]`` sorted by importance."""
        order = np.argsort(-self.importances_mean)
        return [
            [
                self.feature_names[i],
                float(self.importances_mean[i]),
                float(self.importances_std[i]),
            ]
            for i in order
        ]


def permutation_importance(
    model: BaseEstimator,
    X,
    y,
    feature_names: Optional[Sequence[str]] = None,
    metric: str = "r2",
    n_repeats: int = 5,
    random_state: Optional[int] = None,
) -> PermutationImportanceResult:
    """Permutation importance of a *fitted* model on held-out data.

    Importance of feature *j* = ``score(X, y) - mean(score(X_perm_j, y))``
    over *n_repeats* shuffles.  Positive values mean the model relies on the
    feature; values near zero mean it is ignored (or redundant with others).
    """
    X, y = check_X_y(X, y)
    if feature_names is None:
        feature_names = [f"x{j}" for j in range(X.shape[1])]
    if len(feature_names) != X.shape[1]:
        raise ValueError("feature_names length does not match X columns")
    score_fn = METRIC_FUNCTIONS[metric]
    rng = np.random.default_rng(random_state)
    baseline = score_fn(y, model.predict(X))
    means = np.empty(X.shape[1])
    stds = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        drops = []
        for _ in range(n_repeats):
            permuted = X.copy()
            permuted[:, j] = rng.permutation(permuted[:, j])
            drops.append(baseline - score_fn(y, model.predict(permuted)))
        means[j] = float(np.mean(drops))
        stds[j] = float(np.std(drops))
    return PermutationImportanceResult(
        feature_names=list(feature_names),
        baseline_score=baseline,
        importances_mean=means,
        importances_std=stds,
    )
