"""CART regression trees.

Listed by the paper as future work ("the focus for future work should lie on
evaluating further non-linear models, such as Decision Tree Regressor…");
implemented here both standalone and as the base learner of the ensemble
models.  Splits greedily minimize the weighted variance (MSE) of the
children, with the classic O(n log n) sorted-prefix scan per feature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import BaseEstimator, check_X, check_X_y

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class DecisionTreeRegressor(BaseEstimator):
    """Variance-reduction CART regressor.

    Parameters
    ----------
    max_depth:
        Depth cap (``None`` = unlimited).
    min_samples_split / min_samples_leaf:
        Pre-pruning thresholds.
    max_features:
        Features considered per split: ``None`` (all), an int, or
        ``"sqrt"`` — the random-forest subsampling hook.
    random_state:
        Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: object = None,
        random_state: Optional[int] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self._rng = np.random.default_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self._importance = np.zeros(self.n_features_)
        self.root_ = self._grow(X, y, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else self._importance
        )
        return self

    # ------------------------------------------------------------- growing

    def _n_split_features(self) -> int:
        if self.max_features is None:
            return self.n_features_
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(self.n_features_)))
        return max(1, min(int(self.max_features), self.n_features_))

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node_value = float(y.mean())
        n = y.shape[0]
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.ptp(y) == 0.0
        ):
            return _Node(value=node_value)
        split = self._best_split(X, y)
        if split is None:
            return _Node(value=node_value)
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        self._importance[feature] += gain
        left = self._grow(X[mask], y[mask], depth + 1)
        right = self._grow(X[~mask], y[~mask], depth + 1)
        return _Node(value=node_value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n = y.shape[0]
        min_leaf = self.min_samples_leaf
        features = np.arange(self.n_features_)
        k = self._n_split_features()
        if k < self.n_features_:
            features = self._rng.choice(features, size=k, replace=False)
        best = None
        parent_sse = float(((y - y.mean()) ** 2).sum())
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys**2)
            total_sum, total_sq = csum[-1], csq[-1]
            # candidate split after position i (1-indexed counts)
            counts = np.arange(1, n)
            valid = (counts >= min_leaf) & (n - counts >= min_leaf) & (xs[:-1] < xs[1:])
            if not valid.any():
                continue
            left_sse = csq[:-1] - csum[:-1] ** 2 / counts
            right_counts = n - counts
            right_sum = total_sum - csum[:-1]
            right_sse = (total_sq - csq[:-1]) - right_sum**2 / right_counts
            sse = np.where(valid, left_sse + right_sse, np.inf)
            idx = int(np.argmin(sse))
            if not np.isfinite(sse[idx]):
                continue
            gain = parent_sse - float(sse[idx])
            if best is None or gain > best[2]:
                threshold = (xs[idx] + xs[idx + 1]) / 2.0
                best = (int(feature), float(threshold), gain)
        if best is None or best[2] <= 1e-12:
            return None
        return best

    # ------------------------------------------------------------- predict

    def predict(self, X) -> np.ndarray:
        self._check_fitted("root_")
        X = check_X(X)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def n_leaves(self) -> int:
        self._check_fitted("root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)
